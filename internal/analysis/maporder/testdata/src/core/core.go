// Package core is a maporder fixture standing in for an algorithm package
// (the rule matches on the package basename).
package core

import "sort"

// Flagged: direct iteration over a map.
func SumKeysBad(m map[int]float64) float64 {
	var s float64
	for k := range m { // want "range over map m"
		s += float64(k)
	}
	return s
}

// Flagged: map-valued expression, not just identifiers.
func SumFieldBad(c struct{ members map[int]bool }) int {
	n := 0
	for k, v := range c.members { // want "range over map c.members"
		if v {
			n += k
		}
	}
	return n
}

// Flagged: a collection loop that does extra work leaks order through s.
func CollectAndSumBad(m map[int]float64) ([]int, float64) {
	var keys []int
	var s float64
	for k := range m { // want "range over map m"
		keys = append(keys, k)
		s += m[k]
	}
	return keys, s
}

// Clean: the sorted-key-slice idiom — a pure key-collection loop followed
// by a sort is the prescribed rewrite and is recognized as compliant.
func SumKeysGood(m map[int]float64) float64 {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var s float64
	for _, k := range keys {
		s += m[k]
	}
	return s
}

// Clean: a keyless range cannot observe iteration order.
func CountGood(m map[string]bool) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Clean: order-insensitive value reduction, suppressed with a justification.
func MaxGood(m map[string]float64) float64 {
	var best float64
	//slltlint:ignore maporder commutative max, order cannot leak into results
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// Clean: ranging over slices is fine.
func SumSlice(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
