package hotpath

import (
	"bytes"
	"fmt"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
)

// escapeCheck enables the compiler cross-check. Off by default: the static
// summary pass is self-contained and the cross-check shells out to the go
// tool. cmd/slltlint -escapecheck turns it on.
var escapeCheck bool

// SetEscapeCheck toggles the `go build -gcflags=-m` escape cross-check for
// subsequent runs.
func SetEscapeCheck(on bool) { escapeCheck = on }

// An escDiag is one parsed compiler escape diagnostic.
type escDiag struct {
	file string // absolute path
	line int
	msg  string
	heap bool // "escapes to heap" / "moved to heap" (vs "does not escape")
}

// runEscapeAnalysis builds every package containing an alloc-free annotation
// with -gcflags=-m and parses the escape diagnostics into reg.escapes.
// -gcflags applies only to the packages named on the command line, and the
// build cache replays the diagnostics on repeat runs, so the check is
// deterministic and does not force rebuilds of the rest of the module.
func runEscapeAnalysis(reg *registry) error {
	if !escapeCheck || reg.modDir == "" {
		return nil
	}
	paths := map[string]bool{}
	for _, k := range sortedKeys(reg.funcs) {
		if ann := reg.funcs[k]; ann.tier == tierAllocFree {
			paths[ann.pkg] = true
		}
	}
	if len(paths) == 0 {
		return nil
	}
	args := append([]string{"build", "-gcflags=-m"}, sortedKeys(paths)...)
	cmd := exec.Command("go", args...)
	cmd.Dir = reg.modDir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return fmt.Errorf("hotpath: escape cross-check build failed: %v\n%s", err, tail(out, 2048))
	}
	reg.escapes = parseEscapes(reg.modDir, out)
	return nil
}

// parseEscapes extracts file:line diagnostics that carry an escape verdict.
// Lines look like:
//
//	internal/geom/index/grid.go:307:17: moved to heap: h
//	internal/rsmt/steiner_queue.go:85:13: append does not escape
//	# sllt/internal/rsmt
//
// Paths are relative to the module root; "#" package headers and inlining
// chatter are skipped.
func parseEscapes(modDir string, out []byte) []escDiag {
	var diags []escDiag
	for _, raw := range bytes.Split(out, []byte("\n")) {
		line := strings.TrimSpace(string(raw))
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		heap := strings.Contains(line, "escapes to heap") || strings.Contains(line, "moved to heap")
		stack := strings.Contains(line, "does not escape")
		if !heap && !stack {
			continue
		}
		// path:line:col: msg
		parts := strings.SplitN(line, ":", 4)
		if len(parts) < 4 {
			continue
		}
		ln, err := strconv.Atoi(parts[1])
		if err != nil {
			continue
		}
		file := parts[0]
		if !filepath.IsAbs(file) {
			file = filepath.Join(modDir, file)
		}
		diags = append(diags, escDiag{
			file: file,
			line: ln,
			msg:  strings.TrimSpace(parts[3]),
			heap: heap,
		})
	}
	return diags
}

// reconcileEscapes folds the compiler's verdicts into one annotation's
// pending findings. Only alloc-free bodies participate — the hot tier's
// loop-context rule has no compiler counterpart. Rules:
//
//   - a pending finding on a line with a heap verdict is upgraded to
//     [compiler-confirmed];
//   - a heuristic finding on a line the compiler proves "does not escape"
//     (and with no heap verdict on the same line) is dropped as a false
//     positive — the value stays on the stack;
//   - a heap verdict on a line with no static finding becomes its own
//     [compiler-confirmed] finding, anchored at the line start;
//   - surviving heuristic findings are tiered [static heuristic]: the
//     analyzer believes them, the compiler neither confirmed nor cleared.
func reconcileEscapes(reg *registry, ann *funcAnn, subject string, pend []pending) []pending {
	if !escapeCheck || ann.tier != tierAllocFree || ann.file == nil {
		return pend
	}
	heapByLine := map[int][]string{}
	stackLines := map[int]bool{}
	for _, d := range reg.escapes {
		if d.file != ann.file.Name() || d.line < ann.startLine || d.line > ann.endLine {
			continue
		}
		if d.heap {
			heapByLine[d.line] = append(heapByLine[d.line], d.msg)
		} else {
			stackLines[d.line] = true
		}
	}
	confirmed := map[int]bool{}
	out := pend[:0]
	for _, p := range pend {
		switch {
		case len(heapByLine[p.line]) > 0:
			confirmed[p.line] = true
			p.msg += " [compiler-confirmed: " + heapByLine[p.line][0] + "]"
		case p.heur && stackLines[p.line]:
			continue // compiler proved it stays on the stack
		case p.heur:
			p.msg += " [static heuristic]"
		}
		out = append(out, p)
	}
	for _, line := range sortedIntKeys(heapByLine) {
		if confirmed[line] {
			continue
		}
		pos := ann.file.LineStart(line)
		for _, msg := range heapByLine[line] {
			out = append(out, pending{
				pos:  pos,
				line: line,
				msg:  fmt.Sprintf("%s: the compiler reports %q inside this alloc-free body [compiler-confirmed]", subject, msg),
			})
		}
	}
	return out
}

func sortedIntKeys(m map[int][]string) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ { // insertion sort; line sets are tiny
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func tail(b []byte, n int) []byte {
	if len(b) <= n {
		return b
	}
	return b[len(b)-n:]
}
