// Package hotpath verifies allocation discipline in annotated hot kernels.
// A function annotated // hot: must keep its loops free of allocation
// sources; // hot: alloc-free extends the contract to the whole body and
// every callee. The analyzer computes an allocation summary for every
// function in the batch, runs a cleanliness fixpoint over the call graph
// (a function is allocation-free iff its own body has no allocation sources
// and every resolved callee is annotated alloc-free or proven clean), and
// reports each violation at the allocating site so //lint:ignore directives
// stay local to the line they justify.
//
// With escape checking enabled (slltlint -escapecheck), the analyzer also
// runs `go build -gcflags=-m` over every package containing an alloc-free
// annotation and reconciles the compiler's escape diagnostics against the
// static findings: a finding whose line the compiler marks "escapes to heap"
// or "moved to heap" is upgraded to [compiler-confirmed]; a heuristic
// finding (literal, boxing, closure, make, conversion) whose line the
// compiler proves "does not escape" is dropped as a false positive; an
// escape the heuristics missed becomes its own [compiler-confirmed] finding;
// and surviving heuristic findings are tiered [static heuristic]. The
// compiler replays -m diagnostics from the build cache, so the cross-check
// is cheap and deterministic after the first build.
package hotpath

import (
	"fmt"
	"sort"
	"strings"
	"go/token"

	"sllt/internal/analysis"
)

// Analyzer is the hotpath rule.
var Analyzer = &analysis.Analyzer{
	Name:    "hotpath",
	Doc:     "verifies that // hot: kernels do not allocate in loop context and // hot: alloc-free kernels do not allocate at all: no escaping composite literals, unprovisioned appends, interface boxing, closure captures, fmt/errors construction, string<->[]byte conversions, or calls into functions not proven allocation-free",
	URL:     "DESIGN.md#allocation-discipline",
	Prepare: prepare,
	Run:     run,
}

// reg holds the batch-wide state between Prepare and the per-package Run
// passes, rebuilt on every Run invocation.
var reg *registry

func prepare(pkgs []*analysis.Package) error {
	reg = newRegistry()
	for _, p := range pkgs {
		reg.batch[p.ImportPath] = true
	}
	if len(pkgs) > 0 {
		reg.modPrefix = modulePrefix(pkgs[0].ImportPath)
		reg.modDir = pkgs[0].ModDir
	}
	for _, p := range pkgs {
		collectAnnotations(p, reg)
	}
	for _, p := range pkgs {
		collectSummaries(p, reg)
	}
	if err := runEscapeAnalysis(reg); err != nil {
		return err
	}
	finalize(reg)
	return nil
}

func run(pass *analysis.Pass) error {
	if reg == nil {
		return nil
	}
	for _, d := range reg.diags[pass.Pkg.Path()] {
		pass.Reportf(d.pos, "%s", d.msg)
	}
	return nil
}

// modulePrefix derives the module path prefix from an import path: calls to
// module packages outside the lint batch cannot be verified and are
// reported as such.
func modulePrefix(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i+1]
	}
	return path + "/"
}

// ---- cleanliness fixpoint + reporting ----

// dirtCause explains why a function is not allocation-free: the rendered
// root-cause site, plus the call chain (display names) leading down to it.
type dirtCause struct {
	msg   string
	chain []string
}

// finalize runs the cleanliness fixpoint, then renders findings for every
// annotation, reconciling them against compiler escape diagnostics when
// escape checking is on.
func finalize(reg *registry) {
	keys := sortedKeys(reg.sums)
	dirty := map[string]*dirtCause{}

	// Seed: any cleanliness-relevant site in a function's own body makes it
	// dirty, attributed to the first such site in source order.
	for _, k := range keys {
		s := reg.sums[k]
		for _, site := range s.sites {
			if cleanliness(site.kind) {
				dirty[k] = &dirtCause{msg: siteText(site.kind, site.detail)}
				break
			}
		}
	}

	// Propagate dirtiness across call edges. Alloc-free-annotated callees
	// are trusted boundaries — their contract is verified at their own
	// declaration — so dirtiness does not flow through them. A missing
	// callee summary (declaration in a skipped file) is itself dirtying:
	// what cannot be summarized cannot be proven clean.
	for changed := true; changed; {
		changed = false
		for _, k := range keys {
			if dirty[k] != nil {
				continue
			}
			s := reg.sums[k]
			for _, e := range s.callees {
				if a := reg.funcs[e.key]; a != nil && a.tier == tierAllocFree {
					continue
				}
				callee := reg.sums[e.key]
				c := dirty[e.key]
				if c == nil && callee != nil {
					continue // clean so far; later rounds revisit
				}
				name := e.key
				if callee != nil {
					name = callee.name
				}
				cause := &dirtCause{msg: "has no summary in this batch", chain: []string{name}}
				if c != nil {
					cause = &dirtCause{msg: c.msg, chain: appendChain(name, c.chain)}
				}
				dirty[k] = cause
				changed = true
				break
			}
		}
	}

	for _, k := range sortedKeys(reg.funcs) {
		ann := reg.funcs[k]
		s := reg.sums[k]
		if s == nil {
			reg.report(ann.pkg, ann.pos,
				"%s annotation on %s cannot be verified: no function summary (declaration skipped or generated)",
				tierWord(ann.tier), ann.name)
			continue
		}
		emitFindings(reg, ann, s, dirty)
	}
}

// pending is one finding before escape reconciliation.
type pending struct {
	pos  token.Pos
	line int
	msg  string
	heur bool // escape-clearable heuristic kind
}

// emitFindings renders one annotation's violations at their sites.
func emitFindings(reg *registry, ann *funcAnn, s *summary, dirty map[string]*dirtCause) {
	subject := fmt.Sprintf("%s %s", tierWord(ann.tier), ann.name)
	var pend []pending
	add := func(pos token.Pos, heur bool, format string, args ...any) {
		pend = append(pend, pending{
			pos:  pos,
			line: ann.file.Position(pos).Line,
			msg:  fmt.Sprintf(format, args...),
			heur: heur,
		})
	}
	loopSuffix := func(inLoop bool) string {
		if ann.tier == tierHot && inLoop {
			return " in loop context"
		}
		return ""
	}

	for _, site := range s.sites {
		if ann.tier == tierHot && !site.inLoop {
			continue // hot tier: setup may allocate
		}
		heur := heuristic(site.kind)
		suffix := loopSuffix(site.inLoop)
		if site.kind == siteDefer {
			suffix = "" // the message already names the loop
		}
		add(site.pos, heur, "%s %s%s", subject, siteText(site.kind, site.detail), suffix)
	}

	for _, e := range s.callees {
		calleeAnn := reg.funcs[e.key]
		if ann.tier == tierHot {
			if !e.inLoop {
				continue
			}
			// Either annotation tier is a trusted boundary for a hot-tier
			// caller: a hot callee's own loops are verified at its site.
			if calleeAnn != nil {
				continue
			}
		} else if calleeAnn != nil && calleeAnn.tier == tierAllocFree {
			continue
		}
		c := dirty[e.key]
		if c == nil {
			if reg.sums[e.key] == nil {
				add(e.pos, false, "%s calls %s, which has no summary in this batch%s",
					subject, e.key, loopSuffix(e.inLoop))
			}
			continue
		}
		name := e.key
		if cs := reg.sums[e.key]; cs != nil {
			name = cs.name
		}
		via := ""
		if len(c.chain) > 0 {
			path := append([]string{name}, c.chain...)
			if len(path) > 4 {
				path = append(path[:4:4], "…")
			}
			via = " (via " + strings.Join(path, " → ") + ")"
		}
		add(e.pos, false, "%s calls %s, which %s%s%s", subject, name, c.msg, via, loopSuffix(e.inLoop))
	}

	pend = reconcileEscapes(reg, ann, subject, pend)
	sort.SliceStable(pend, func(i, j int) bool { return pend[i].pos < pend[j].pos })
	for _, p := range pend {
		reg.report(ann.pkg, p.pos, "%s", p.msg)
	}
}

func appendChain(name string, chain []string) []string {
	out := make([]string, 0, len(chain)+1)
	out = append(out, name)
	return append(out, chain...)
}

// siteText renders one allocation source.
func siteText(kind siteKind, detail string) string {
	switch kind {
	case siteMake:
		return fmt.Sprintf("allocates %s", detail)
	case siteNew:
		return fmt.Sprintf("allocates %s", detail)
	case siteLit:
		return fmt.Sprintf("constructs %s on the heap", detail)
	case siteAppend:
		return fmt.Sprintf("grows %s by append without capacity provenance (reslice pooled or caller-provided backing, or make it with a real size)", detail)
	case siteBox:
		return fmt.Sprintf("boxes %s", detail)
	case siteConstruct:
		return fmt.Sprintf("calls %s, which constructs its result on the heap", detail)
	case siteConv:
		return fmt.Sprintf("converts %s, which copies the payload", detail)
	case siteStdlib:
		return fmt.Sprintf("calls %s, which is not on the alloc-free stdlib allowlist", detail)
	case siteModule:
		return fmt.Sprintf("calls %s, which is outside this lint batch; run slltlint over the whole module to verify it", detail)
	case siteIface:
		return fmt.Sprintf("calls interface method %s; the implementation cannot be verified allocation-free", detail)
	case siteDynamic:
		return fmt.Sprintf("calls through package-level func value %s, which cannot be verified allocation-free", detail)
	case siteGo:
		return "spawns a goroutine, which allocates its stack"
	case siteDefer:
		return "defers inside a loop; per-iteration defer records are heap-allocated"
	case siteClosure:
		return fmt.Sprintf("builds a closure capturing %s, which allocates if the literal escapes", detail)
	}
	return detail
}
