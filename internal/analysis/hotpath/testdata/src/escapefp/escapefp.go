// Package escapefp exercises the escape cross-check's false-positive
// handling: pooled slice backing, ref-free-element appends into provided
// capacity, and write-once package-level tables must survey clean, while a
// genuinely escaping literal is confirmed by the compiler and a non-escaping
// one is cleared.
package escapefp

import "sync"

var pool = sync.Pool{New: func() any { b := make([]int, 0, 64); return &b }}

// UsePool runs entirely on pooled backing: Get/Put are exempt, the reslice
// carries capacity provenance, and nothing escapes.
//
// hot: alloc-free
func UsePool(xs []int) int {
	bp := pool.Get().(*[]int)
	b := (*bp)[:0]
	for _, x := range xs {
		b = append(b, x)
	}
	s := 0
	for _, v := range b {
		s += v
	}
	*bp = b[:0]
	pool.Put(bp)
	return s
}

// Fill appends ref-free elements into caller-provided backing.
//
// hot: alloc-free
func Fill(dst []int, n int) []int {
	for i := 0; i < n; i++ {
		dst = append(dst, i)
	}
	return dst
}

// weights is written once at package init; reading it allocates nothing.
var weights = [8]float64{1, 2, 3, 4, 5, 6, 7, 8}

// Weight indexes the write-once table.
//
// hot: alloc-free
func Weight(i int) float64 {
	return weights[i&7]
}

type node struct{ v int }

// Leak returns its literal: the static heuristic flags it and the compiler
// confirms the escape.
//
// hot: alloc-free
func Leak() *node {
	n := &node{v: 1} // want "constructs &node{…} on the heap [compiler-confirmed"
	return n
}

// NoLeak builds the same literal but never lets it out: the static
// heuristic alone would flag it, the compiler's "does not escape" clears it.
//
// hot: alloc-free
func NoLeak() int {
	n := &node{v: 2}
	return n.v
}
