// Package hotbasic exercises the hot tier: allocations are legal in setup
// but flagged in loop context, callback literals count as loops, appends
// with capacity provenance pass, and annotated callees are trusted.
package hotbasic

// alloc is an unannotated allocating helper: calling it from a hot loop is a
// finding attributed through the summary fixpoint.
func alloc() []int { return make([]int, 8) }

// sq is allocation-free; the fixpoint proves it clean without annotation.
func sq(x int) int { return x * x }

// sink takes an interface: concrete arguments box at the call site.
func sink(v any) {}

// Kernel allocates its scratch in setup (allowed) and must not allocate per
// element.
//
// hot:
func Kernel(xs []int) int {
	buf := make([]int, 0, len(xs)) // setup allocation: allowed in the hot tier
	total := 0
	for _, x := range xs {
		buf = append(buf, sq(x))
		tmp := make([]int, 4) // want "allocates make([]int, 4) in loop context"
		_ = tmp
		total += alloc()[0] // want "calls alloc, which allocates make([]int, 8) in loop context"
	}
	return total + len(buf)
}

// Each hands a literal to visit: the callback body is loop context even
// though Each itself has no loop statement.
//
// hot:
func Each(xs []int, f func(int)) {
	visit(xs, func(x int) {
		f(x)
		_ = make([]int, 1) // want "allocates make([]int, 1) in loop context"
	})
}

func visit(xs []int, f func(int)) {
	for _, x := range xs {
		f(x)
	}
}

// Box passes a concrete int where an interface is expected, once per
// element; pointers fit the interface word and do not box.
//
// hot:
func Box(xs []int) {
	for i, x := range xs {
		sink(x) // want "boxes x"
		sink(&xs[i])
	}
}

// trusted is a hot-annotated callee: its own loops are verified at its
// declaration, so hot callers may call it per element without findings.
//
// hot:
func trusted(h *[]int, v int) {
	*h = append(*h, v)
}

// Caller leans on the trusted boundary.
//
// hot:
func Caller(xs []int, out *[]int) {
	for _, x := range xs {
		trusted(out, x)
	}
}
