// Package allocfree exercises the strict tier: every allocation source in
// the body is a finding regardless of loop context, and every callee must be
// alloc-free-annotated or proven clean by the fixpoint.
package allocfree

import (
	"errors"
	"math"
	"strings"

	"sllt/internal/geom"
)

// Sum is genuinely allocation-free.
//
// hot: alloc-free
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return math.Abs(s)
}

// Bad collects one of each direct allocation source.
//
// hot: alloc-free
func Bad(n int) int {
	out := []int{1, 2, 3} // want "constructs []int{…} on the heap"
	m := map[int]bool{}   // want "constructs map[int]bool{…} on the heap"
	p := new(int)         // want "allocates new(int)"
	var dst []int
	dst = append(dst, n)    // want "grows dst by append without capacity provenance"
	err := errors.New("no") // want "calls errors.New, which constructs its result on the heap"
	b := []byte("payload")  // want "converts []byte(\"payload\"), which copies the payload"
	_, _, _ = m, p, err
	return out[0] + dst[0] + len(b)
}

type thing struct{ v int }

// helper is unannotated and allocates; strict callers inherit the finding.
func helper() *thing { return &thing{} }

// UsesHelper calls a dirty helper.
//
// hot: alloc-free
func UsesHelper() int {
	t := helper() // want "calls helper, which constructs &thing{…} on the heap"
	return t.v
}

func lvl1() int { return lvl2()[0] }

func lvl2() []int { return make([]int, 4) }

// Chained reaches the allocation two calls down; the finding carries the
// chain.
//
// hot: alloc-free
func Chained() int {
	return lvl1() // want "calls lvl1, which allocates make([]int, 4) (via lvl1 → lvl2)"
}

// External calls outside the lint batch (geom is imported but not a lint
// target in this fixture run).
//
// hot: alloc-free
func External(a, b geom.Point) float64 {
	return a.Dist(b) // want "outside this lint batch"
}

// Closed captures a local; the closure may allocate if the literal escapes.
//
// hot: alloc-free
func Closed(xs []int) int {
	t := 0
	f := func() { t++ } // want "builds a closure capturing t"
	for range xs {
		f()
	}
	return t
}

// Spawn allocates a goroutine stack and a capturing closure.
//
// hot: alloc-free
func Spawn(ch chan int) {
	go func() { ch <- 1 }() // want "spawns a goroutine" "builds a closure capturing ch"
}

// DeferLoop heap-allocates a defer record per iteration.
//
// hot: alloc-free
func DeferLoop(fns []func()) {
	for _, f := range fns {
		defer f() // want "defers inside a loop"
	}
}

type reader interface{ read() int }

// Iface cannot see through the interface.
//
// hot: alloc-free
func Iface(r reader) int {
	return r.read() // want "calls interface method"
}

var hook = func(int) int { return 0 }

// Dyn calls through mutable package state.
//
// hot: alloc-free
func Dyn(x int) int {
	return hook(x) // want "calls through package-level func value"
}

// Rep calls stdlib off the allowlist.
//
// hot: alloc-free
func Rep(s string) string {
	return strings.Repeat(s, 2) // want "calls strings.Repeat, which is not on the alloc-free stdlib allowlist"
}

// inner is a trusted annotated boundary for Outer.
//
// hot: alloc-free
func inner(x int) int { return x + 1 }

// Outer calls only trusted or allowlisted code: no findings.
//
// hot: alloc-free
func Outer(xs []int) int {
	s := 0
	for _, x := range xs {
		s += inner(x)
	}
	return s
}
