package hotpath_test

import (
	"testing"

	"sllt/internal/analysis"
	"sllt/internal/analysis/hotpath"
)

func TestHotTier(t *testing.T) {
	analysis.RunTest(t, hotpath.Analyzer, "testdata/src/hotbasic")
}

func TestAllocFreeTier(t *testing.T) {
	analysis.RunTest(t, hotpath.Analyzer, "testdata/src/allocfree")
}

// TestEscapeReconciliation runs the analyzer with the compiler cross-check
// on: the escapefp fixtures encode the false-positive cases (pooled slices,
// ref-free-element appends, write-once package tables) that must survey
// clean once the compiler's "does not escape" verdicts are reconciled, plus
// one genuine escape the compiler confirms. The fixture is a real module
// package, so `go build -gcflags=-m` resolves it like any other.
func TestEscapeReconciliation(t *testing.T) {
	hotpath.SetEscapeCheck(true)
	defer hotpath.SetEscapeCheck(false)
	analysis.RunTest(t, hotpath.Analyzer, "testdata/src/escapefp")
}
