package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"sllt/internal/analysis"
)

// obsPath is the observability package: calls into it are exempt by design —
// the counters are atomic adds on caller-owned memory, allocation-free in
// steady state (the grid's zero-alloc guard runs with counters attached).
const obsPath = "sllt/internal/obs"

// exemptPkg reports whether calls into path are exempt from the allocation
// rules. sync and sync/atomic are exempt for the same reason they are the
// fix: pool Get/Put traffic is the steady-state-free discipline this
// analyzer pushes kernels toward (a cold pool's New still allocates — the
// AllocsPerRun guards measure the warm pool, which is the contract).
func exemptPkg(path string) bool {
	return path == obsPath || path == "sync" || path == "sync/atomic"
}

// A siteKind classifies one direct allocation source.
type siteKind int

const (
	siteMake      siteKind = iota // make(slice/map/chan)
	siteNew                       // new(T)
	siteLit                       // heap-bound composite literal (slice/map literal, &T{})
	siteAppend                    // append without capacity provenance
	siteBox                       // interface boxing at a call site
	siteConstruct                 // fmt/errors/strconv construction
	siteConv                      // string <-> []byte/[]rune conversion
	siteStdlib                    // stdlib call off the alloc-free allowlist
	siteModule                    // module call outside the lint batch
	siteIface                     // call through an interface method
	siteDynamic                   // call through a package-level func value
	siteGo                        // goroutine spawn
	siteDefer                     // defer inside a loop
	siteClosure                   // capturing function literal
)

// cleanliness reports whether a site kind makes its function dirty for the
// interprocedural fixpoint. Capturing closures are excluded: a closure that
// never escapes (created once, called locally or passed to a non-leaking
// callee) is stack-allocated, and counting every capture would poison most
// helper summaries. Closures are still reported inside annotated bodies,
// where the escape cross-check can confirm or clear them.
func cleanliness(k siteKind) bool { return k != siteClosure }

// heuristic site kinds are the ones the analyzer cannot decide alone — the
// compiler's escape analysis may prove them stack-allocated (a constant-size
// make, a literal that never leaves the frame, a closure that is called and
// dropped, a small string conversion). The escape cross-check confirms,
// clears, or confidence-tiers them. The remaining kinds are policy, not
// escape facts: append growth is amortized and invisible to -m, fmt/errors
// allocate internally, and the call-classification kinds are about
// verifiability.
func heuristic(k siteKind) bool {
	switch k {
	case siteMake, siteNew, siteLit, siteBox, siteClosure, siteConv:
		return true
	}
	return false
}

// An allocSite is one direct allocation source observed in a function body.
type allocSite struct {
	kind   siteKind
	detail string
	pos    token.Pos
	inLoop bool
}

// A callEdge is a resolved call to another in-batch function.
type callEdge struct {
	key    string
	pos    token.Pos
	inLoop bool
}

// summary is one function's allocation-relevant behavior.
type summary struct {
	key, name, pkg string
	pos            token.Pos
	sites          []allocSite
	callees        []callEdge
}

// fctx is the per-function collection context.
type fctx struct {
	pkg *analysis.Package
	p   *analysis.Pass // type-info shim for the shared Pass helpers
	reg *registry
	sum *summary
	fd  *ast.FuncDecl

	// loops holds the position ranges that count as loop context: for/range
	// bodies, plus any function literal passed as a call argument — a
	// callback handed to another function (parallel.ForEach, tree.Walk,
	// sort.Slice) is presumed to run once per element.
	loops []posRange

	// params holds parameter and receiver objects: appends into memory
	// reached through them have caller-provided capacity provenance, and
	// dynamic calls through them are caller-accounted.
	params map[types.Object]bool

	// provCap marks locals whose backing has capacity provenance: resliced
	// from existing or pooled memory, derived from a parameter, or made with
	// a real size. Appending to them is amortized-free.
	provCap map[types.Object]bool
}

type posRange struct{ lo, hi token.Pos }

func (c *fctx) inLoop(pos token.Pos) bool {
	for _, r := range c.loops {
		if pos >= r.lo && pos < r.hi {
			return true
		}
	}
	return false
}

// collectSummaries builds a summary for every function declaration in pkg.
func collectSummaries(pkg *analysis.Package, reg *registry) {
	shim := &analysis.Pass{Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, TypesInfo: pkg.TypesInfo}
	for _, f := range pkg.Files {
		if analysis.SkipFile(pkg.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &fctx{
				pkg: pkg,
				p:   shim,
				reg: reg,
				fd:  fd,
				sum: &summary{
					key:  symKey(pkg.ImportPath, fd),
					name: displayName(fd),
					pkg:  pkg.ImportPath,
					pos:  fd.Name.Pos(),
				},
				params:  map[types.Object]bool{},
				provCap: map[types.Object]bool{},
			}
			c.bindParams(fd)
			c.loopRanges(fd.Body)
			// Two provenance passes so capacity facts established later in
			// source order (loop-carried scratch) reach earlier appends.
			c.provenancePass(fd.Body)
			c.provenancePass(fd.Body)
			c.sitePass(fd.Body)
			reg.sums[c.sum.key] = c.sum
		}
	}
}

func (c *fctx) bindParams(fd *ast.FuncDecl) {
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := c.pkg.TypesInfo.Defs[name]; obj != nil {
					c.params[obj] = true
				}
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
}

// loopRanges collects the loop-context position ranges of the body.
func (c *fctx) loopRanges(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ForStmt:
			c.loops = append(c.loops, posRange{s.Body.Pos(), s.Body.End()})
		case *ast.RangeStmt:
			c.loops = append(c.loops, posRange{s.Body.Pos(), s.Body.End()})
		case *ast.CallExpr:
			for _, arg := range s.Args {
				if fl, ok := unparen(arg).(*ast.FuncLit); ok {
					c.loops = append(c.loops, posRange{fl.Body.Pos(), fl.Body.End()})
				}
			}
		}
		return true
	})
}

// ---- capacity provenance ----

// provenancePass records which locals hold slices with capacity provenance.
func (c *fctx) provenancePass(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, lhs := range s.Lhs {
				id, ok := unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := c.objOf(id)
				if obj == nil || c.params[obj] {
					continue
				}
				if c.provenanceOf(s.Rhs[i]) {
					c.provCap[obj] = true
				}
			}
		case *ast.ValueSpec:
			for i, name := range s.Names {
				obj := c.pkg.TypesInfo.Defs[name]
				if obj == nil || i >= len(s.Values) {
					continue
				}
				if c.provenanceOf(s.Values[i]) {
					c.provCap[obj] = true
				}
			}
		}
		return true
	})
}

// provenanceOf reports whether e evaluates to backing with capacity
// provenance: memory that already exists (a reslice, a pool entry, anything
// reached through a parameter) or was sized on purpose (make with a nonzero
// length or capacity). Appends onto such backing are amortized-free; the
// AllocsPerRun guards catch residual growth at runtime.
func (c *fctx) provenanceOf(e ast.Expr) bool {
	switch e := unparen(e).(type) {
	case *ast.SliceExpr:
		return true // reslicing shares existing backing
	case *ast.StarExpr:
		return c.provenanceOf(e.X)
	case *ast.TypeAssertExpr:
		return c.provenanceOf(e.X)
	case *ast.Ident:
		obj := c.objOf(e)
		if obj == nil {
			return false
		}
		return c.params[obj] || c.provCap[obj]
	case *ast.SelectorExpr:
		// h.buf and deeper selections: provenance of the root object.
		root := e.X
		for {
			switch x := unparen(root).(type) {
			case *ast.SelectorExpr:
				root = x.X
				continue
			case *ast.StarExpr:
				root = x.X
				continue
			}
			break
		}
		if id, ok := unparen(root).(*ast.Ident); ok {
			if obj := c.objOf(id); obj != nil {
				return c.params[obj] || c.provCap[obj]
			}
		}
		return false
	case *ast.CallExpr:
		fun := unparen(e.Fun)
		if id, ok := fun.(*ast.Ident); ok {
			if b, ok := c.pkg.TypesInfo.Uses[id].(*types.Builtin); ok {
				switch b.Name() {
				case "append":
					if len(e.Args) > 0 {
						return c.provenanceOf(e.Args[0]) // growth keeps the origin's provenance
					}
				case "make":
					// make([]T, n) and make([]T, n, c) carry provenance unless
					// the effective capacity is a literal zero.
					if len(e.Args) >= 2 {
						capArg := e.Args[len(e.Args)-1]
						if lit, ok := unparen(capArg).(*ast.BasicLit); ok && lit.Value == "0" {
							return false
						}
						return true
					}
				}
				return false
			}
		}
		// sync.Pool.Get hands back recycled backing.
		if fn := c.resolvedFunc(fun); fn != nil && fn.Pkg() != nil &&
			fn.Pkg().Path() == "sync" && fn.Name() == "Get" {
			return true
		}
		return false
	}
	return false
}

// ---- site pass ----

func (c *fctx) site(kind siteKind, pos token.Pos, detail string) {
	c.sum.sites = append(c.sum.sites, allocSite{kind: kind, detail: detail, pos: pos, inLoop: c.inLoop(pos)})
}

// sitePass walks the body once, recording allocation sources and callee
// edges. Function literal bodies are part of the enclosing function's
// summary (with callback literals contributing loop context).
func (c *fctx) sitePass(body *ast.BlockStmt) {
	handledLit := map[*ast.CompositeLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			c.handleCall(s)
		case *ast.UnaryExpr:
			if s.Op == token.AND {
				if cl, ok := unparen(s.X).(*ast.CompositeLit); ok {
					handledLit[cl] = true
					c.site(siteLit, s.Pos(), "&"+c.typeStr(c.p.TypeOf(cl))+"{…}")
				}
			}
		case *ast.CompositeLit:
			if handledLit[s] {
				return true
			}
			t := c.p.TypeOf(s)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				if len(s.Elts) > 0 { // empty slice literals have no backing
					c.site(siteLit, s.Pos(), c.typeStr(t)+"{…}")
				}
			case *types.Map:
				c.site(siteLit, s.Pos(), c.typeStr(t)+"{…}")
			}
		case *ast.FuncLit:
			if name, ok := c.captures(s); ok {
				c.site(siteClosure, s.Pos(), name)
			}
		case *ast.GoStmt:
			c.site(siteGo, s.Pos(), "")
		case *ast.DeferStmt:
			if c.inLoop(s.Pos()) {
				c.site(siteDefer, s.Pos(), "")
			}
		}
		return true
	})
}

// captures reports whether fl captures a variable of the enclosing function,
// returning one captured name for the diagnostic.
func (c *fctx) captures(fl *ast.FuncLit) (string, bool) {
	found := ""
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.pkg.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured = declared inside the enclosing function but outside this
		// literal. Package-level vars and fields don't count.
		if v.Pos() >= c.fd.Pos() && v.Pos() < c.fd.End() &&
			!(v.Pos() >= fl.Pos() && v.Pos() < fl.End()) {
			found = v.Name()
			return false
		}
		return true
	})
	return found, found != ""
}

// resolvedFunc resolves a call/reference expression to its *types.Func.
func (c *fctx) resolvedFunc(fun ast.Expr) *types.Func {
	switch f := unparen(fun).(type) {
	case *ast.Ident:
		fn, _ := c.pkg.TypesInfo.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := c.pkg.TypesInfo.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// handleCall classifies one call expression.
func (c *fctx) handleCall(call *ast.CallExpr) {
	fun := unparen(call.Fun)

	// Conversions: string <-> []byte/[]rune copy their payload.
	if tv, ok := c.pkg.TypesInfo.Types[fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && allocConv(c.p.TypeOf(call), c.p.TypeOf(call.Args[0])) {
			c.site(siteConv, call.Pos(), c.typeStr(c.p.TypeOf(call))+"("+types.ExprString(call.Args[0])+")")
		}
		return
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := c.pkg.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				c.site(siteMake, call.Pos(), types.ExprString(call))
			case "new":
				c.site(siteNew, call.Pos(), types.ExprString(call))
			case "append":
				if len(call.Args) > 0 && !c.provenanceOf(call.Args[0]) {
					c.site(siteAppend, call.Pos(), types.ExprString(call.Args[0]))
				}
			}
			return
		}
	}

	fn := c.resolvedFunc(fun)
	if fn == nil {
		c.dynamicCall(fun)
		return
	}
	fn = fn.Origin()
	pkg := fn.Pkg()
	if pkg == nil {
		return // universe scope (error.Error)
	}
	path := pkg.Path()
	if exemptPkg(path) {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
			c.site(siteIface, fun.Pos(), path+"."+fn.Name())
			return
		}
	}
	display := path + "." + fn.Name()
	switch {
	case c.reg.batch[path]:
		c.sum.callees = append(c.sum.callees, callEdge{
			key: typesFuncKey(fn, sig), pos: fun.Pos(), inLoop: c.inLoop(fun.Pos()),
		})
	case strings.HasPrefix(path, c.reg.modPrefix):
		c.site(siteModule, fun.Pos(), display)
	default:
		switch classifyStdlib(path, fn.Name()) {
		case stdAllow:
		case stdConstruct:
			c.site(siteConstruct, fun.Pos(), display)
			return // construction subsumes per-argument boxing
		default:
			c.site(siteStdlib, fun.Pos(), display)
		}
	}
	c.checkBoxing(call, sig, display)
}

// checkBoxing flags concrete values boxed into interface parameters at the
// call site. Reference-shaped values (pointers, chans, maps, funcs) fit the
// interface word without allocating and are not flagged.
func (c *fctx) checkBoxing(call *ast.CallExpr, sig *types.Signature, callee string) {
	if sig == nil {
		return
	}
	np := sig.Params().Len()
	if np == 0 {
		return
	}
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= np-1 {
			pi = np - 1
		}
		if pi >= np {
			break
		}
		pt := sig.Params().At(pi).Type()
		if sig.Variadic() && pi == np-1 && !call.Ellipsis.IsValid() {
			if sl, ok := pt.Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := c.p.TypeOf(arg)
		if at == nil || boxFree(at) {
			continue
		}
		c.site(siteBox, arg.Pos(), types.ExprString(arg)+" (type "+c.typeStr(at)+") into interface at call to "+callee)
	}
}

// boxFree reports whether values of t convert to an interface without
// allocating: interfaces themselves, untyped nil, and single-word reference
// types whose representation is already a pointer.
func boxFree(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UntypedNil || u.Kind() == types.UnsafePointer
	}
	return false
}

// allocConv reports whether a conversion from 'from' to 'to' copies bytes.
func allocConv(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	return (isString(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isString(from))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// dynamicCall handles calls through function values. Values rooted in locals
// or parameters are caller-accounted (the closure's own allocation behavior
// was summarized where it was created — the parallel.ForEach shape); only
// package-level func values are unverifiable.
func (c *fctx) dynamicCall(fun ast.Expr) {
	root := unparen(fun)
	for {
		switch x := root.(type) {
		case *ast.SelectorExpr:
			root = unparen(x.X)
			continue
		case *ast.IndexExpr:
			root = unparen(x.X)
			continue
		case *ast.StarExpr:
			root = unparen(x.X)
			continue
		}
		break
	}
	if id, ok := root.(*ast.Ident); ok {
		if key := globalKey(c.objOf(id)); key != "" {
			c.site(siteDynamic, fun.Pos(), key)
		}
	}
}

// globalKey returns the registry key of a package-level variable, or "".
func globalKey(obj types.Object) string {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return ""
	}
	return v.Pkg().Path() + "." + v.Name()
}

func (c *fctx) objOf(id *ast.Ident) types.Object {
	if o := c.pkg.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return c.pkg.TypesInfo.Defs[id]
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func typeString(t types.Type) string {
	if t == nil {
		return "?"
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// typeStr renders t with same-package names unqualified.
func (c *fctx) typeStr(t types.Type) string {
	if t == nil {
		return "?"
	}
	return types.TypeString(t, types.RelativeTo(c.pkg.Types))
}

// typesFuncKey builds the summary key of a resolved in-batch function.
func typesFuncKey(fn *types.Func, sig *types.Signature) string {
	key := fn.Pkg().Path() + "."
	if sig != nil && sig.Recv() != nil {
		if name := recvTypeName(sig.Recv().Type()); name != "" {
			key += name + "."
		}
	}
	return key + fn.Name()
}

// recvTypeName peels pointers down to the named receiver type's name.
func recvTypeName(t types.Type) string {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			return x.Obj().Name()
		default:
			return ""
		}
	}
}

// ---- stdlib classification ----

type stdClass int

const (
	stdAllow stdClass = iota
	stdConstruct
	stdUnknown
)

// allowPkgs never allocate on any path a kernel would take. encoding/binary
// is the byte-order arithmetic the codecs use (binary.Write, which takes a
// writer, is not hot-kernel code); sync/atomic and sync are handled by
// exemptPkg before classification.
var allowPkgs = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"math/cmplx":  true,
	"cmp":         true,
	"unicode":     true,
	"unicode/utf8": true,
	"encoding/binary": true,
}

// allowFuncs are individually vetted alloc-free stdlib functions from
// packages that also contain allocating ones.
var allowFuncs = map[string]bool{
	"sort.Search":           true,
	"sort.SearchInts":       true,
	"sort.SearchFloat64s":   true,
	"crypto/sha256.Sum256":  true,
	"strings.Compare":       true,
	"strings.Contains":      true,
	"strings.Count":         true,
	"strings.EqualFold":     true,
	"strings.HasPrefix":     true,
	"strings.HasSuffix":     true,
	"strings.Index":         true,
	"strings.IndexByte":     true,
	"strings.LastIndexByte": true,
	"bytes.Compare":         true,
	"bytes.Contains":        true,
	"bytes.Equal":           true,
	"bytes.HasPrefix":       true,
	"bytes.HasSuffix":       true,
	"bytes.Index":           true,
	"bytes.IndexByte":       true,
	// strconv's Append* formatters write into the caller's slice; they
	// allocate only when the destination lacks capacity, which the
	// param-rooted append carve-out already holds the caller to.
	"strconv.AppendInt":   true,
	"strconv.AppendUint":  true,
	"strconv.AppendFloat": true,
	"slices.Sort":           true,
	"slices.SortFunc":       true,
	"slices.BinarySearch":   true,
	"slices.Contains":       true,
	"slices.Index":          true,
	"slices.Min":            true,
	"slices.Max":            true,
	"slices.Reverse":        true,
}

// constructPkgs build strings, errors or formatted values on the heap by
// design.
var constructPkgs = map[string]bool{"fmt": true, "errors": true, "strconv": true}

func classifyStdlib(path, name string) stdClass {
	switch {
	case allowPkgs[path]:
		return stdAllow
	case allowFuncs[path+"."+name]:
		return stdAllow
	case constructPkgs[path]:
		return stdConstruct
	}
	return stdUnknown
}

// sortedKeys returns map keys in deterministic order.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
