package hotpath

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// TestGuardCoverage walks the module source and cross-checks the alloc-free
// annotations against their AllocsPerRun guards: every function carrying a
// // hot: alloc-free directive must have an entry in its package's
// allocFreeGuards map (hot_guard_test.go), and every guard entry must point
// at a still-annotated function. The pairing is what turns the static
// analyzer's verdict into a regression test — an annotation without a guard
// is an unpinned claim, a guard without an annotation is stale.
func TestGuardCoverage(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	annotated := map[string]map[string]bool{} // package dir -> display names
	walkErr := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if tier, ok := directiveIn(fd.Doc); ok && tier == tierAllocFree {
				dir := filepath.Dir(path)
				if annotated[dir] == nil {
					annotated[dir] = map[string]bool{}
				}
				annotated[dir][displayName(fd)] = true
			}
		}
		return nil
	})
	if walkErr != nil {
		t.Fatal(walkErr)
	}
	if len(annotated) == 0 {
		t.Fatal("no // hot: alloc-free annotations found in the module")
	}
	dirs := make([]string, 0, len(annotated))
	for dir := range annotated {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		names := annotated[dir]
		rel, _ := filepath.Rel(root, dir)
		guarded, err := guardKeys(fset, filepath.Join(dir, "hot_guard_test.go"))
		if err != nil {
			t.Errorf("%s: %d alloc-free kernel(s) but no readable hot_guard_test.go: %v", rel, len(names), err)
			continue
		}
		for _, name := range sortedNames(names) {
			if !guarded[name] {
				t.Errorf("%s: alloc-free kernel %s has no allocFreeGuards entry in hot_guard_test.go", rel, name)
			}
		}
		for _, name := range sortedNames(guarded) {
			if !names[name] {
				t.Errorf("%s: allocFreeGuards entry %q matches no // hot: alloc-free function", rel, name)
			}
		}
	}
}

// guardKeys parses a hot_guard_test.go file and returns the string keys of
// its package-level allocFreeGuards map literal.
func guardKeys(fset *token.FileSet, path string) (map[string]bool, error) {
	f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	keys := map[string]bool{}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, ident := range vs.Names {
				if ident.Name != "allocFreeGuards" || i >= len(vs.Values) {
					continue
				}
				cl, ok := vs.Values[i].(*ast.CompositeLit)
				if !ok {
					continue
				}
				for _, elt := range cl.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if lit, ok := kv.Key.(*ast.BasicLit); ok && lit.Kind == token.STRING {
						if s, err := strconv.Unquote(lit.Value); err == nil {
							keys[s] = true
						}
					}
				}
			}
		}
	}
	return keys, nil
}

func sortedNames(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
