package hotpath

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"sllt/internal/analysis"
)

// The annotation grammar. A directive is a doc-comment line on a function or
// method declaration:
//
//	// hot:
//	// hot: <note>
//
// declares a hot kernel: code on the flow's per-sink or per-candidate scaling
// path. Setup work (building a grid, sizing scratch) may allocate, but the
// function's loops — and any callback literal it hands to another function,
// which is presumed to run per element — must not: every allocation source
// inside loop context is flagged, as is any loop-context call into a function
// that is neither hot-annotated, proven allocation-free, nor exempt.
//
//	// hot: alloc-free
//	// hot: alloc-free <note>
//
// declares the strict tier: the whole body must be free of allocation
// sources, loop or not, and every resolved callee must itself be alloc-free —
// annotated as such, or proven by the interprocedural summary fixpoint. Each
// alloc-free annotation must be pinned by an AllocsPerRun==0 guard entry in
// the owning package's hot_guard_test.go (the guard-coverage meta-test
// enforces the pairing, so the static contract and the runtime guard cannot
// drift apart).
//
// One deliberate carve-out in both tiers: append whose destination has
// capacity provenance — backing resliced from a pool or an existing array,
// caller-provided memory reached through a parameter, or a make with a real
// size — is amortized-free and allowed; the runtime guards catch residual
// growth. append onto a fresh zero-capacity slice is flagged.
const hotPrefix = "hot:"

// allocFreeWord is the payload keyword selecting the strict tier.
const allocFreeWord = "alloc-free"

type annTier int

const (
	tierNone annTier = iota
	tierHot
	tierAllocFree
)

// funcAnn is one annotated function: the machine-checked contract site.
type funcAnn struct {
	tier annTier
	key  string // symbol key, see symKey
	name string // display name (Recv.Name or Name)
	pos  token.Pos
	pkg  string // defining package import path

	// Body extent, used by the escape cross-check to decide which compiler
	// diagnostics fall inside an alloc-free contract.
	file               *token.File
	startLine, endLine int
}

// annDiag is a finding, reported when the owning package's pass runs.
type annDiag struct {
	pos token.Pos
	msg string
}

// registry holds the annotation set and analysis results of one Run batch,
// keyed by stable symbol strings ("pkg/path.Recv.Name").
type registry struct {
	funcs     map[string]*funcAnn  // annotated functions by key
	diags     map[string][]annDiag // final diagnostics by package import path
	sums      map[string]*summary  // every function's allocation summary
	batch     map[string]bool      // import paths loaded from source this run
	modPrefix string               // module path prefix ("sllt/")
	modDir    string               // module root directory (escape cross-check cwd)
	escapes   []escDiag            // parsed -gcflags=-m diagnostics (escape mode)
}

func newRegistry() *registry {
	return &registry{
		funcs: make(map[string]*funcAnn),
		diags: make(map[string][]annDiag),
		sums:  make(map[string]*summary),
		batch: make(map[string]bool),
	}
}

func (r *registry) report(pkg string, pos token.Pos, format string, args ...any) {
	r.diags[pkg] = append(r.diags[pkg], annDiag{pos, fmt.Sprintf(format, args...)})
}

// symKey builds the registry key of a function declaration:
// "pkg/path.Name" for package functions, "pkg/path.Recv.Name" for methods.
func symKey(path string, fd *ast.FuncDecl) string {
	key := path + "."
	if name := recvName(fd); name != "" {
		key += name + "."
	}
	return key + fd.Name.Name
}

// recvName returns the receiver type name of a method declaration.
func recvName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.ParenExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

func displayName(fd *ast.FuncDecl) string {
	if r := recvName(fd); r != "" {
		return r + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// directiveIn extracts the first hot: directive from the comment group. The
// payload is cut at any embedded "//" so fixture want comments can share the
// line.
func directiveIn(g *ast.CommentGroup) (tier annTier, ok bool) {
	if g == nil {
		return tierNone, false
	}
	for _, c := range g.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if !strings.HasPrefix(text, hotPrefix) {
			continue
		}
		text = strings.TrimSpace(strings.TrimPrefix(text, hotPrefix))
		if i := strings.Index(text, "//"); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		if text == allocFreeWord || strings.HasPrefix(text, allocFreeWord+" ") {
			return tierAllocFree, true
		}
		return tierHot, true
	}
	return tierNone, false
}

// collectAnnotations scans one package for hot: directives on function
// declarations.
func collectAnnotations(pkg *analysis.Package, reg *registry) {
	path := pkg.ImportPath
	for _, f := range pkg.Files {
		if analysis.SkipFile(pkg.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			tier, ok := directiveIn(fd.Doc)
			if !ok {
				continue
			}
			if fd.Body == nil {
				reg.report(path, fd.Name.Pos(), "hot annotation on bodyless declaration %s cannot be verified", fd.Name.Name)
				continue
			}
			tf := pkg.Fset.File(fd.Pos())
			reg.funcs[symKey(path, fd)] = &funcAnn{
				tier: tier, key: symKey(path, fd),
				name: displayName(fd), pos: fd.Name.Pos(), pkg: path,
				file:      tf,
				startLine: pkg.Fset.Position(fd.Pos()).Line,
				endLine:   pkg.Fset.Position(fd.End()).Line,
			}
		}
	}
}

func tierWord(t annTier) string {
	if t == tierAllocFree {
		return "alloc-free kernel"
	}
	return "hot kernel"
}
