package liberty

import (
	"fmt"
	"strings"
)

// CellSpec describes a synthetic buffer for GenerateSource.
type CellSpec struct {
	Name     string
	InputCap float64
	MaxCap   float64
	Area     float64
	WS       float64
	WC       float64
	WI       float64
	SC       float64
	SI       float64
}

// Default28nmSpecs returns the synthetic 28 nm-class clock buffer family
// used throughout the experiments. Drive strength doubles per step: load
// coefficients halve, input capacitance and area roughly double, intrinsic
// delay creeps up slightly — the canonical shape of a real buffer family.
func Default28nmSpecs() []CellSpec {
	return []CellSpec{
		{Name: "CLKBUFX2", InputCap: 0.8, MaxCap: 40, Area: 0.55, WS: 0.12, WC: 1.20, WI: 8, SC: 1.40, SI: 7},
		{Name: "CLKBUFX4", InputCap: 1.5, MaxCap: 80, Area: 0.80, WS: 0.11, WC: 0.62, WI: 9, SC: 0.75, SI: 7},
		{Name: "CLKBUFX8", InputCap: 2.8, MaxCap: 150, Area: 1.30, WS: 0.10, WC: 0.34, WI: 10.5, SC: 0.42, SI: 8},
		{Name: "CLKBUFX16", InputCap: 5.5, MaxCap: 300, Area: 2.30, WS: 0.09, WC: 0.20, WI: 13, SC: 0.25, SI: 9},
	}
}

// Default returns the synthetic library, built by generating Liberty source
// from the default specs and parsing it back — so the default library always
// exercises the real parser and LUT fitting path.
func Default() *Library {
	lib, err := Parse(GenerateSource("sim28", Default28nmSpecs()))
	if err != nil {
		panic("liberty: default library failed to parse: " + err.Error())
	}
	return lib
}

// GenerateSource emits Liberty text for the given buffer specs, with NLDM
// lookup tables sampled exactly from each cell's linear model (so parsing
// and refitting recovers the coefficients).
func GenerateSource(name string, specs []CellSpec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "library (%s) {\n", name)
	b.WriteString("  delay_model : table_lookup;\n")
	b.WriteString("  time_unit : \"1ps\";\n")
	b.WriteString("  capacitive_load_unit (1, ff);\n")
	b.WriteString("  lu_table_template (delay_4x4) {\n")
	b.WriteString("    variable_1 : input_net_transition;\n")
	b.WriteString("    variable_2 : total_output_net_capacitance;\n")
	b.WriteString("    index_1 (\"5, 20, 60, 120\");\n")
	b.WriteString("    index_2 (\"2, 10, 40, 120\");\n")
	b.WriteString("  }\n")
	slews := []float64{5, 20, 60, 120}
	caps := []float64{2, 10, 40, 120}
	for _, s := range specs {
		fmt.Fprintf(&b, "  cell (%s) {\n", s.Name)
		fmt.Fprintf(&b, "    area : %.4f;\n", s.Area)
		b.WriteString("    pin (A) {\n      direction : input;\n")
		fmt.Fprintf(&b, "      capacitance : %.4f;\n    }\n", s.InputCap)
		b.WriteString("    pin (Y) {\n      direction : output;\n")
		fmt.Fprintf(&b, "      max_capacitance : %.4f;\n", s.MaxCap)
		b.WriteString("      function : \"A\";\n")
		b.WriteString("      timing () {\n        related_pin : \"A\";\n")
		writeLUT(&b, "cell_rise", slews, caps, func(sl, c float64) float64 { return s.WS*sl + s.WC*c + s.WI })
		writeLUT(&b, "cell_fall", slews, caps, func(sl, c float64) float64 { return s.WS*sl + s.WC*c + s.WI })
		writeLUT(&b, "rise_transition", slews, caps, func(sl, c float64) float64 { return s.SC*c + s.SI })
		writeLUT(&b, "fall_transition", slews, caps, func(sl, c float64) float64 { return s.SC*c + s.SI })
		b.WriteString("      }\n    }\n  }\n")
	}
	b.WriteString("}\n")
	return b.String()
}

func writeLUT(b *strings.Builder, name string, slews, caps []float64, f func(slew, cap float64) float64) {
	fmt.Fprintf(b, "        %s (delay_4x4) {\n", name)
	fmt.Fprintf(b, "          index_1 (\"%s\");\n", joinNums(slews))
	fmt.Fprintf(b, "          index_2 (\"%s\");\n", joinNums(caps))
	b.WriteString("          values (")
	for i, sl := range slews {
		if i > 0 {
			b.WriteString(", \\\n                  ")
		}
		row := make([]float64, len(caps))
		for j, c := range caps {
			row[j] = f(sl, c)
		}
		fmt.Fprintf(b, "\"%s\"", joinNums(row))
	}
	b.WriteString(");\n        }\n")
}

func joinNums(xs []float64) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = trimFloat(x)
	}
	return strings.Join(parts, ", ")
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%.6f", x)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}
