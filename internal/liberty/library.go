package liberty

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// BufferCell is the linear clock-buffer model of one library cell:
// D = WS·slew_in + WC·C_load + WI (all times ps, capacitances fF), plus the
// output slew model SlewOut = SC·C_load + SI.
type BufferCell struct {
	Name     string
	InputCap float64 // unit: fF
	MaxCap   float64 // unit: fF // output max_capacitance
	Area     float64 // unit: um^2

	WS float64 // unit: 1 // slew coefficient (dimensionless)
	WC float64 // unit: ps/fF // load coefficient
	WI float64 // unit: ps // intrinsic delay

	SC float64 // unit: ps/fF // output slew load coefficient
	SI float64 // unit: ps // output slew intrinsic
}

// Delay evaluates Equation (6) for the cell.
//
// unit: slewIn ps, capLoad fF -> ps
func (c *BufferCell) Delay(slewIn, capLoad float64) float64 {
	return c.WS*slewIn + c.WC*capLoad + c.WI
}

// OutSlew returns the output slew driving capLoad.
//
// unit: capLoad fF -> ps
func (c *BufferCell) OutSlew(capLoad float64) float64 {
	return c.SC*capLoad + c.SI
}

// Library is a set of clock buffer cells, sorted by drive strength
// (ascending input capacitance).
type Library struct {
	Name  string
	Cells []*BufferCell
}

// Cell returns the named cell, or nil.
func (l *Library) Cell(name string) *BufferCell {
	for _, c := range l.Cells {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Smallest returns the weakest buffer (first after sorting).
func (l *Library) Smallest() *BufferCell { return l.Cells[0] }

// Strongest returns the strongest buffer.
func (l *Library) Strongest() *BufferCell { return l.Cells[len(l.Cells)-1] }

// PickForLoad returns the smallest cell whose max_capacitance covers the
// load with the given derating margin in (0,1]; the strongest cell if none
// qualifies.
//
// unit: capLoad fF, margin 1 -> _
func (l *Library) PickForLoad(capLoad, margin float64) *BufferCell {
	if margin <= 0 || margin > 1 {
		margin = 1
	}
	for _, c := range l.Cells {
		if capLoad <= c.MaxCap*margin {
			return c
		}
	}
	return l.Strongest()
}

// MinWC returns min over cells of the load coefficient — the first term of
// the paper's Equation (7) insertion-delay lower bound.
//
// unit: -> ps/fF
func (l *Library) MinWC() float64 {
	m := l.Cells[0].WC
	for _, c := range l.Cells[1:] {
		if c.WC < m {
			m = c.WC
		}
	}
	return m
}

// MinWI returns min over cells of the intrinsic delay — the second term of
// Equation (7).
//
// unit: -> ps
func (l *Library) MinWI() float64 {
	m := l.Cells[0].WI
	for _, c := range l.Cells[1:] {
		if c.WI < m {
			m = c.WI
		}
	}
	return m
}

// InsertionDelayLowerBound evaluates the paper's Equation (7): the most
// conservative buffer delay estimate for a node with the given downstream
// load, used to pre-annotate nodes before their buffers are actually chosen.
//
// unit: capLoad fF -> ps
func (l *Library) InsertionDelayLowerBound(capLoad float64) float64 {
	return l.MinWC()*capLoad + l.MinWI()
}

// Parse reads Liberty source and extracts every buffer-like cell: a cell
// with one input pin and one output pin whose timing arc has NLDM delay
// tables (or scalar values). LUTs are least-squares fitted to the linear
// model. Cells are returned sorted by input capacitance.
func Parse(src string) (*Library, error) {
	root, err := ParseAST(src)
	if err != nil {
		return nil, err
	}
	return buildLibrary(root)
}

// ParseReader is Parse over an io.Reader: the source streams through the
// fixed-buffer lexer (see ParseASTReader) instead of being held in memory.
func ParseReader(r io.Reader) (*Library, error) {
	root, err := ParseASTReader(r)
	if err != nil {
		return nil, err
	}
	return buildLibrary(root)
}

func buildLibrary(root *Group) (*Library, error) {
	if root.Name != "library" {
		return nil, fmt.Errorf("liberty: top-level group is %q, want library", root.Name)
	}
	lib := &Library{Name: firstArg(root.Args)}
	for _, cg := range root.SubGroups("cell") {
		cell, err := extractCell(cg)
		if err != nil {
			return nil, fmt.Errorf("liberty: cell %s: %w", firstArg(cg.Args), err)
		}
		if cell != nil {
			lib.Cells = append(lib.Cells, cell)
		}
	}
	if len(lib.Cells) == 0 {
		return nil, fmt.Errorf("liberty: no buffer cells found")
	}
	sort.Slice(lib.Cells, func(i, j int) bool { return lib.Cells[i].InputCap < lib.Cells[j].InputCap })
	return lib, nil
}

func firstArg(args []string) string {
	if len(args) == 0 {
		return ""
	}
	return args[0]
}

// nominalInSlew is the input slew at which the fitted output-slew
// sensitivity is folded into the intrinsic term.
const nominalInSlew = 20 // unit: ps

// extractCell converts one cell group into a BufferCell; returns (nil, nil)
// for cells that are not two-pin buffers.
func extractCell(cg *Group) (*BufferCell, error) {
	cell := &BufferCell{Name: firstArg(cg.Args)}
	if a, ok := cg.Attr("area"); ok {
		cell.Area = atofDefault(a.Value(), 0)
	}
	var inPin, outPin *Group
	for _, pg := range cg.SubGroups("pin") {
		dir, _ := pg.Attr("direction")
		switch dir.Value() {
		case "input":
			inPin = pg
		case "output":
			outPin = pg
		}
	}
	if inPin == nil || outPin == nil {
		return nil, nil // not a buffer
	}
	if a, ok := inPin.Attr("capacitance"); ok {
		cell.InputCap = atofDefault(a.Value(), 0)
	}
	if a, ok := outPin.Attr("max_capacitance"); ok {
		cell.MaxCap = atofDefault(a.Value(), 0)
	}
	timings := outPin.SubGroups("timing")
	if len(timings) == 0 {
		return nil, fmt.Errorf("no timing group on output pin")
	}
	tg := timings[0]
	dws, dwc, dwi, err := fitLUT(tg, "cell_rise", "cell_fall")
	if err != nil {
		return nil, err
	}
	cell.WS, cell.WC, cell.WI = dws, dwc, dwi
	if sws, swc, swi, err := fitLUT(tg, "rise_transition", "fall_transition"); err == nil {
		// Output slew barely depends on input slew to first order; fold the
		// fitted slew sensitivity into the intrinsic at the nominal input
		// slew.
		cell.SC = swc
		cell.SI = swi + sws*nominalInSlew
	} else {
		cell.SC = dwc * 1.2
		cell.SI = dwi
	}
	if cell.MaxCap == 0 {
		cell.MaxCap = cell.InputCap * 40
	}
	return cell, nil
}

// fitLUT least-squares fits delay = ws·slew + wc·cap + wi over the first
// available of the named tables (averaging rise/fall when both exist). The
// same shape fits transition tables: the fitted value is then a slew, which
// has the same dimensions (ps output over ps and fF inputs).
//
// unit: -> 1, ps/fF, ps, _
func fitLUT(tg *Group, names ...string) (ws, wc, wi float64, err error) {
	var fits [][3]float64
	for _, name := range names {
		for _, lut := range tg.SubGroups(name) {
			f, ferr := fitOneLUT(lut)
			if ferr != nil {
				return 0, 0, 0, ferr
			}
			fits = append(fits, f)
		}
	}
	if len(fits) == 0 {
		return 0, 0, 0, fmt.Errorf("no %v tables", names)
	}
	for _, f := range fits {
		ws += f[0]
		wc += f[1]
		wi += f[2]
	}
	n := float64(len(fits))
	return ws / n, wc / n, wi / n, nil
}

// fitOneLUT fits a single NLDM table group: index_1 = input slews (ps),
// index_2 = load caps (fF), values = delay matrix. Scalar tables yield
// ws = wc = 0.
func fitOneLUT(lut *Group) ([3]float64, error) {
	idx1 := numsFromAttr(lut, "index_1")
	idx2 := numsFromAttr(lut, "index_2")
	vals, ok := lut.Attr("values")
	if !ok {
		return [3]float64{}, fmt.Errorf("LUT %s has no values", lut.Name)
	}
	var rows [][]float64
	for _, rv := range vals.Values {
		rows = append(rows, parseNums(rv))
	}
	if len(rows) == 0 || len(rows[0]) == 0 {
		return [3]float64{}, fmt.Errorf("LUT %s has empty values", lut.Name)
	}
	if len(idx1) == 0 && len(idx2) == 0 {
		// scalar
		return [3]float64{0, 0, rows[0][0]}, nil
	}
	// Assemble samples (slew, cap, delay).
	type sample struct{ s, c, d float64 }
	var samples []sample
	for i, row := range rows {
		s := 0.0
		if i < len(idx1) {
			s = idx1[i]
		}
		for j, d := range row {
			c := 0.0
			if j < len(idx2) {
				c = idx2[j]
			}
			samples = append(samples, sample{s, c, d})
		}
	}
	// Least squares for d = ws·s + wc·c + wi via normal equations.
	var n, ss, sc2, s1, c1, sc, sd, cd, d1 float64
	for _, smp := range samples {
		n++
		ss += smp.s * smp.s
		sc2 += smp.c * smp.c
		s1 += smp.s
		c1 += smp.c
		sc += smp.s * smp.c
		sd += smp.s * smp.d
		cd += smp.c * smp.d
		d1 += smp.d
	}
	// Solve the 3x3 system [ss sc s1; sc sc2 c1; s1 c1 n] x = [sd cd d1].
	m := [3][4]float64{
		{ss, sc, s1, sd},
		{sc, sc2, c1, cd},
		{s1, c1, n, d1},
	}
	x, ok2 := solve3(m)
	if !ok2 {
		// Degenerate (e.g. single row or column): fall back to mean delay.
		return [3]float64{0, 0, d1 / n}, nil
	}
	return x, nil
}

// solve3 solves a 3x3 augmented system by Gaussian elimination with partial
// pivoting. Returns false if singular.
func solve3(m [3][4]float64) ([3]float64, bool) {
	for col := 0; col < 3; col++ {
		p := col
		for r := col + 1; r < 3; r++ {
			if abs(m[r][col]) > abs(m[p][col]) {
				p = r
			}
		}
		if abs(m[p][col]) < 1e-12 {
			return [3]float64{}, false
		}
		m[col], m[p] = m[p], m[col]
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for c := col; c < 4; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	return [3]float64{m[0][3] / m[0][0], m[1][3] / m[1][1], m[2][3] / m[2][2]}, true
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func numsFromAttr(g *Group, name string) []float64 {
	a, ok := g.Attr(name)
	if !ok {
		return nil
	}
	var out []float64
	for _, v := range a.Values {
		out = append(out, parseNums(v)...)
	}
	return out
}

func parseNums(s string) []float64 {
	fields := strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' || r == '\n' })
	var out []float64
	for _, f := range fields {
		if v, err := strconv.ParseFloat(f, 64); err == nil {
			out = append(out, v)
		}
	}
	return out
}

func atofDefault(s string, def float64) float64 {
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return v
	}
	return def
}
