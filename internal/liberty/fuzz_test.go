package liberty

import (
	"reflect"
	"testing"
)

// FuzzParseLiberty asserts Parse returns errors — never panics — on
// arbitrary input, and that any library it accepts has at least one cell
// whose accessors are safe to call.
func FuzzParseLiberty(f *testing.F) {
	f.Add(GenerateSource("fuzz28", Default28nmSpecs()))
	f.Add(`library (l) { cell (b) { pin (i) { direction : input ; } pin (o) { direction : output ; timing () { cell_rise () { values ( "x" ) ; } } } } }`)
	f.Add(`library (l) { cell (b) { pin (i) { direction : input ; } pin (o) { direction : output ; timing () { cell_rise () { index_1 ( "1" ) ; values ( "" ) ; } } } } }`)
	f.Add("library (l) { /* unterminated")
	f.Add(`library (l) { k : "unterminated`)
	f.Add("library")
	f.Fuzz(func(t *testing.T, src string) {
		// The streaming lexer behind Parse must agree with the retained
		// legacy lexer on every input, error for error.
		lg, lerr := ParseASTLegacy(src)
		sg, serr := ParseAST(src)
		if (lerr == nil) != (serr == nil) || (lerr != nil && lerr.Error() != serr.Error()) {
			t.Fatalf("lexer divergence:\nlegacy: %v\nstream: %v", lerr, serr)
		}
		if lerr == nil && !reflect.DeepEqual(lg, sg) {
			t.Fatal("lexer divergence: ASTs differ")
		}
		lib, err := Parse(src)
		if err != nil {
			return
		}
		if len(lib.Cells) == 0 {
			t.Fatal("accepted library with no cells")
		}
		// The hot accessors assume a non-empty cell list; exercise them.
		_ = lib.Smallest()
		_ = lib.Strongest()
		_ = lib.InsertionDelayLowerBound(10)
		_ = lib.PickForLoad(10, 0.9)
	})
}
