package liberty

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// diffAST checks the streaming parser against the retained legacy-lexer
// parser: same acceptance, same error text, deeply-equal AST — both from the
// string wrapper and from a deliberately tiny-chunked reader.
func diffAST(t *testing.T, label, src string) {
	t.Helper()
	lg, lerr := ParseASTLegacy(src)
	sg, serr := ParseAST(src)
	diffASTCheck(t, label+" (string)", lg, lerr, sg, serr)
	cg, cerr := ParseASTReader(&chunkReader{data: []byte(src), n: 3})
	diffASTCheck(t, label+" (chunked reader)", lg, lerr, cg, cerr)
}

func diffASTCheck(t *testing.T, label string, legacy *Group, lerr error, stream *Group, serr error) {
	t.Helper()
	if (lerr == nil) != (serr == nil) || (lerr != nil && lerr.Error() != serr.Error()) {
		t.Fatalf("%s: error mismatch:\nlegacy: %v\nstream: %v", label, lerr, serr)
	}
	if lerr == nil && !reflect.DeepEqual(legacy, stream) {
		t.Fatalf("%s: AST mismatch:\nlegacy: %#v\nstream: %#v", label, legacy, stream)
	}
}

type chunkReader struct {
	data []byte
	n    int
}

func (r *chunkReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	n := r.n
	if n > len(r.data) {
		n = len(r.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}

type failReader struct {
	data []byte
	err  error
}

func (r *failReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, r.err
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

func TestStreamASTMatchesLegacyOverCorpus(t *testing.T) {
	dir := "testdata/fuzz/FuzzParseLiberty"
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		header, body, ok := strings.Cut(string(b), "\n")
		if !ok || !strings.HasPrefix(header, "go test fuzz v1") {
			t.Fatalf("unexpected corpus format in %s", e.Name())
		}
		body = strings.TrimSpace(body)
		body = strings.TrimPrefix(body, "string(")
		body = strings.TrimSuffix(body, ")")
		src, err := strconv.Unquote(body)
		if err != nil {
			t.Fatalf("undecodable corpus entry %s: %v", e.Name(), err)
		}
		diffAST(t, e.Name(), src)
	}
}

func TestStreamASTMatchesLegacyOverFixtures(t *testing.T) {
	synth := GenerateSource("diff_28nm", Default28nmSpecs())
	crlf, err := os.ReadFile("testdata/crlf.lib")
	if err != nil {
		t.Fatal(err)
	}
	fixtures := map[string]string{
		"synthetic":           synth,
		"crlf":                string(crlf),
		"empty":               "",
		"notGroup":            "a : b ;",
		"unterminatedComment": "library (l) { /* no end",
		"unterminatedString":  "library (l) { x : \"one\ntwo",
		"continuationLF":      "library (l) { \\\n x : 1 ; }",
		"loneBackslash":       "library (l) { \\\r x : 1 ; }",
		"slashIdent":          "library (l) { bus : a/b ; }",
		"commentLines":        "/* 1\n2\n3 */\nlibrary (l) {\n// tail\n}",
	}
	for name, src := range fixtures {
		diffAST(t, name, src)
	}
}

// TestCRLFContinuation pins the satellite fix: a backslash line continuation
// followed by CRLF lexes like one followed by LF in both lexers, and the
// CRLF fixture parses identically to its LF-normalized form.
func TestCRLFContinuation(t *testing.T) {
	crlfSrc := "library (l) {\r\n  values ( \\\r\n    \"1\" ) ;\r\n}\r\n"
	lfSrc := strings.ReplaceAll(crlfSrc, "\r\n", "\n")
	for label, parse := range map[string]func(string) (*Group, error){
		"legacy": ParseASTLegacy,
		"stream": ParseAST,
	} {
		cg, err := parse(crlfSrc)
		if err != nil {
			t.Fatalf("%s: CRLF continuation rejected: %v", label, err)
		}
		lg, err := parse(lfSrc)
		if err != nil {
			t.Fatalf("%s: LF form rejected: %v", label, err)
		}
		if !reflect.DeepEqual(cg, lg) {
			t.Fatalf("%s: CRLF and LF parses differ", label)
		}
	}

	b, err := os.ReadFile("testdata/crlf.lib")
	if err != nil {
		t.Fatal(err)
	}
	src := string(b)
	if !strings.Contains(src, "\r\n") {
		t.Fatal("crlf.lib fixture lost its CRLF endings")
	}
	cg, err := ParseAST(src)
	if err != nil {
		t.Fatalf("crlf.lib: %v", err)
	}
	lg, err := ParseAST(strings.ReplaceAll(src, "\r\n", "\n"))
	if err != nil {
		t.Fatalf("crlf.lib (LF): %v", err)
	}
	if !reflect.DeepEqual(cg, lg) {
		t.Fatal("crlf.lib: CRLF and LF parses differ")
	}
	if _, err := ParseReader(strings.NewReader(src)); err != nil {
		t.Fatalf("ParseReader over crlf.lib: %v", err)
	}
}

func TestParseReaderMatchesParse(t *testing.T) {
	src := GenerateSource("rdr_28nm", Default28nmSpecs())
	a, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseReader(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("ParseReader result differs from Parse")
	}
}

func TestLibertyReaderErrorSurfaced(t *testing.T) {
	boom := errors.New("nfs timeout")
	_, err := ParseASTReader(&failReader{data: []byte("library (l) {"), err: boom})
	if err == nil || !errors.Is(err, boom) || !strings.HasPrefix(err.Error(), "liberty: read:") {
		t.Fatalf("read error not surfaced: %v", err)
	}
}
