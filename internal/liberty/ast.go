// Package liberty parses a practical subset of the Liberty (.lib) timing
// library format and extracts the linear clock-buffer model the paper's
// buffering optimization consumes (Equation 6):
//
//	D_buf = ωs·Slew_in + ωc·Cap_load + ωi
//
// The parser builds a generic group/attribute AST for the Liberty syntax
// (groups `name (args) { ... }`, simple attributes `name : value ;`, complex
// attributes `name (v1, v2, ...) ;`), then the extraction layer walks
// cell/pin/timing groups, reads NLDM lookup tables and least-squares fits
// the linear coefficients. A synthetic 28 nm-class library is provided for
// experiments — no foundry PDK is available, so its values are calibrated to
// land full-flow results in the ranges the paper reports.
package liberty

import (
	"fmt"
	"strings"
	"unicode"
)

// Group is a Liberty group statement: name (args) { statements }.
type Group struct {
	Name   string
	Args   []string
	Attrs  []Attr
	Groups []*Group
}

// Attr is a simple (`name : value ;`) or complex (`name (v1, v2) ;`)
// attribute. Complex attributes have Values; simple ones a single Value.
type Attr struct {
	Name   string
	Values []string
}

// Value returns the first value of the attribute (empty if none).
func (a Attr) Value() string {
	if len(a.Values) == 0 {
		return ""
	}
	return a.Values[0]
}

// Attr returns the first attribute of the group with the given name.
func (g *Group) Attr(name string) (Attr, bool) {
	for _, a := range g.Attrs {
		if a.Name == name {
			return a, true
		}
	}
	return Attr{}, false
}

// SubGroups returns all direct child groups with the given name.
func (g *Group) SubGroups(name string) []*Group {
	var out []*Group
	for _, s := range g.Groups {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

type token struct {
	kind tokenKind
	text string
	line int
}

type tokenKind int

const (
	tokIdent tokenKind = iota
	tokString
	tokLBrace
	tokRBrace
	tokLParen
	tokRParen
	tokColon
	tokSemi
	tokComma
	tokEOF
)

type lexer struct {
	src  string
	pos  int
	line int
}

func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
			end := strings.Index(lx.src[lx.pos+2:], "*/")
			if end < 0 {
				return token{}, fmt.Errorf("liberty: line %d: unterminated comment", lx.line)
			}
			lx.line += strings.Count(lx.src[lx.pos:lx.pos+2+end+2], "\n")
			lx.pos += 2 + end + 2
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			nl := strings.IndexByte(lx.src[lx.pos:], '\n')
			if nl < 0 {
				lx.pos = len(lx.src)
			} else {
				lx.pos += nl
			}
		case c == '\\' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '\n':
			lx.line++
			lx.pos += 2 // line continuation
		case c == '\\' && lx.pos+2 < len(lx.src) && lx.src[lx.pos+1] == '\r' && lx.src[lx.pos+2] == '\n':
			lx.line++
			lx.pos += 3 // CRLF line continuation
		case c == '"':
			start := lx.pos + 1
			end := start
			for end < len(lx.src) && lx.src[end] != '"' {
				if lx.src[end] == '\n' {
					lx.line++
				}
				end++
			}
			if end >= len(lx.src) {
				return token{}, fmt.Errorf("liberty: line %d: unterminated string", lx.line)
			}
			lx.pos = end + 1
			return token{tokString, lx.src[start:end], lx.line}, nil
		case c == '{':
			lx.pos++
			return token{tokLBrace, "{", lx.line}, nil
		case c == '}':
			lx.pos++
			return token{tokRBrace, "}", lx.line}, nil
		case c == '(':
			lx.pos++
			return token{tokLParen, "(", lx.line}, nil
		case c == ')':
			lx.pos++
			return token{tokRParen, ")", lx.line}, nil
		case c == ':':
			lx.pos++
			return token{tokColon, ":", lx.line}, nil
		case c == ';':
			lx.pos++
			return token{tokSemi, ";", lx.line}, nil
		case c == ',':
			lx.pos++
			return token{tokComma, ",", lx.line}, nil
		default:
			if isIdentByte(c) {
				start := lx.pos
				for lx.pos < len(lx.src) && isIdentByte(lx.src[lx.pos]) {
					lx.pos++
				}
				return token{tokIdent, lx.src[start:lx.pos], lx.line}, nil
			}
			return token{}, fmt.Errorf("liberty: line %d: unexpected character %q", lx.line, c)
		}
	}
	return token{tokEOF, "", lx.line}, nil
}

func isIdentByte(c byte) bool {
	return c == '_' || c == '.' || c == '-' || c == '+' || c == '*' || c == '!' ||
		c == '[' || c == ']' || c == '/' ||
		unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// tokenSource is the lexer interface the parser consumes: the string-based
// lexer above and the reader-based streamLexer both implement it and must
// produce identical token streams (pinned by differential tests).
type tokenSource interface {
	next() (token, error)
}

type parser struct {
	lx   tokenSource
	tok  token
	peek *token
}

func (p *parser) advance() error {
	if p.peek != nil {
		p.tok, p.peek = *p.peek, nil
		return nil
	}
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) peekTok() (token, error) {
	if p.peek == nil {
		t, err := p.lx.next()
		if err != nil {
			return token{}, err
		}
		p.peek = &t
	}
	return *p.peek, nil
}

// ParseAST parses Liberty source into its top-level group (usually
// `library (...) { ... }`).
func ParseAST(src string) (*Group, error) {
	return ParseASTReader(strings.NewReader(src))
}

// ParseASTLegacy parses with the retained whole-string lexer, kept as the
// reference the streaming lexer is differentially tested against.
func ParseASTLegacy(src string) (*Group, error) {
	return parseTop(&parser{lx: &lexer{src: src, line: 1}})
}

func parseTop(p *parser) (*Group, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	g, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	grp, ok := g.(*Group)
	if !ok {
		return nil, fmt.Errorf("liberty: top-level statement is not a group")
	}
	return grp, nil
}

// parseStatement parses one statement starting at p.tok: either a group, a
// complex attribute, or a simple attribute. Returns *Group or Attr.
func (p *parser) parseStatement() (interface{}, error) {
	if p.tok.kind != tokIdent {
		return nil, fmt.Errorf("liberty: line %d: expected identifier, got %q", p.tok.line, p.tok.text)
	}
	name := p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	switch p.tok.kind {
	case tokColon:
		// Simple attribute: name : value ;
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokIdent && p.tok.kind != tokString {
			return nil, fmt.Errorf("liberty: line %d: expected attribute value", p.tok.line)
		}
		val := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokSemi {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		return Attr{Name: name, Values: []string{val}}, nil
	case tokLParen:
		args, err := p.parseArgs()
		if err != nil {
			return nil, err
		}
		switch p.tok.kind {
		case tokLBrace:
			g := &Group{Name: name, Args: args}
			if err := p.advance(); err != nil {
				return nil, err
			}
			for p.tok.kind != tokRBrace {
				if p.tok.kind == tokEOF {
					return nil, fmt.Errorf("liberty: unexpected EOF in group %q", name)
				}
				st, err := p.parseStatement()
				if err != nil {
					return nil, err
				}
				switch v := st.(type) {
				case *Group:
					g.Groups = append(g.Groups, v)
				case Attr:
					g.Attrs = append(g.Attrs, v)
				}
			}
			if err := p.advance(); err != nil { // consume }
				return nil, err
			}
			if p.tok.kind == tokSemi {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			return g, nil
		case tokSemi:
			if err := p.advance(); err != nil {
				return nil, err
			}
			return Attr{Name: name, Values: args}, nil
		default:
			// Complex attribute without trailing semicolon.
			return Attr{Name: name, Values: args}, nil
		}
	default:
		return nil, fmt.Errorf("liberty: line %d: expected ':' or '(' after %q", p.tok.line, name)
	}
}

// parseArgs consumes a parenthesized argument list; p.tok is '(' on entry
// and the token after ')' on exit.
func (p *parser) parseArgs() ([]string, error) {
	var args []string
	for {
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch p.tok.kind {
		case tokRParen:
			if err := p.advance(); err != nil {
				return nil, err
			}
			return args, nil
		case tokIdent, tokString:
			args = append(args, p.tok.text)
		case tokComma:
			// separator
		case tokEOF:
			return nil, fmt.Errorf("liberty: unexpected EOF in argument list")
		default:
			return nil, fmt.Errorf("liberty: line %d: unexpected %q in arguments", p.tok.line, p.tok.text)
		}
	}
}
