package liberty

import (
	"math"
	"testing"
)

func TestRoundTripRecoverscoefficients(t *testing.T) {
	specs := Default28nmSpecs()
	lib, err := Parse(GenerateSource("sim28", specs))
	if err != nil {
		t.Fatal(err)
	}
	if lib.Name != "sim28" {
		t.Errorf("library name = %q", lib.Name)
	}
	if len(lib.Cells) != len(specs) {
		t.Fatalf("parsed %d cells, want %d", len(lib.Cells), len(specs))
	}
	for _, s := range specs {
		c := lib.Cell(s.Name)
		if c == nil {
			t.Fatalf("cell %s missing", s.Name)
		}
		// LUTs are exact samples of the linear model, so the least-squares
		// fit must recover the coefficients almost exactly.
		checks := []struct {
			name      string
			got, want float64
			tol       float64
		}{
			{"WS", c.WS, s.WS, 1e-6},
			{"WC", c.WC, s.WC, 1e-6},
			{"WI", c.WI, s.WI, 1e-4},
			{"InputCap", c.InputCap, s.InputCap, 1e-9},
			{"MaxCap", c.MaxCap, s.MaxCap, 1e-9},
			{"Area", c.Area, s.Area, 1e-9},
			{"SC", c.SC, s.SC, 1e-6},
		}
		for _, ck := range checks {
			if math.Abs(ck.got-ck.want) > ck.tol {
				t.Errorf("%s.%s = %g, want %g", s.Name, ck.name, ck.got, ck.want)
			}
		}
	}
}

func TestLibraryOrderingAndSelection(t *testing.T) {
	lib := Default()
	for i := 1; i < len(lib.Cells); i++ {
		if lib.Cells[i].InputCap < lib.Cells[i-1].InputCap {
			t.Fatal("cells not sorted by input cap")
		}
	}
	if lib.Smallest().Name != "CLKBUFX2" || lib.Strongest().Name != "CLKBUFX16" {
		t.Errorf("smallest/strongest = %s/%s", lib.Smallest().Name, lib.Strongest().Name)
	}
	if got := lib.PickForLoad(30, 1).Name; got != "CLKBUFX2" {
		t.Errorf("PickForLoad(30) = %s, want CLKBUFX2", got)
	}
	if got := lib.PickForLoad(30, 0.5).Name; got != "CLKBUFX4" {
		t.Errorf("PickForLoad(30, margin 0.5) = %s, want CLKBUFX4", got)
	}
	if got := lib.PickForLoad(1e6, 1).Name; got != "CLKBUFX16" {
		t.Errorf("PickForLoad(huge) = %s, want strongest", got)
	}
}

func TestInsertionDelayLowerBound(t *testing.T) {
	lib := Default()
	// Eq (7): min WC * load + min WI. In the default family the X16 has the
	// smallest WC (0.20) and the X2 the smallest WI (8).
	want := 0.20*100 + 8
	if got := lib.InsertionDelayLowerBound(100); math.Abs(got-want) > 1e-6 {
		t.Errorf("lower bound = %g, want %g", got, want)
	}
	// The bound must never exceed any real cell's delay at zero slew.
	for _, c := range lib.Cells {
		for _, load := range []float64{1, 10, 50, 200} {
			if lb := lib.InsertionDelayLowerBound(load); lb > c.Delay(0, load)+1e-9 {
				t.Errorf("lower bound %g exceeds %s delay %g at load %g", lb, c.Name, c.Delay(0, load), load)
			}
		}
	}
}

func TestParseTolerantSyntax(t *testing.T) {
	src := `/* header comment */
library (tiny) {
  time_unit : "1ps";
  cell (BUF1) {
    area : 2.5;
    pin (A) { direction : input; capacitance : 1.5; }
    pin (Y) {
      direction : output;
      max_capacitance : 64;
      timing () {
        related_pin : "A";
        cell_rise (scalar) { values ("17.5"); }
      }
    }
  }
  cell (NOTABUF) {
    pin (A) { direction : input; capacitance : 1; }
  }
}`
	lib, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(lib.Cells) != 1 {
		t.Fatalf("cells = %d, want 1 (non-buffer skipped)", len(lib.Cells))
	}
	c := lib.Cells[0]
	if c.WI != 17.5 || c.WS != 0 || c.WC != 0 {
		t.Errorf("scalar fit: WS=%g WC=%g WI=%g", c.WS, c.WC, c.WI)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`library (x) {`,
		`cell (y) { }`,
		`library (x) { cell (b) { pin (A) { direction : input; } pin (Y) { direction : output; } } }`,
	}
	for i, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestDelayAndSlewEval(t *testing.T) {
	c := &BufferCell{WS: 0.1, WC: 2, WI: 10, SC: 1, SI: 5}
	if got := c.Delay(20, 15); got != 0.1*20+2*15+10 {
		t.Errorf("Delay = %g", got)
	}
	if got := c.OutSlew(7); got != 12 {
		t.Errorf("OutSlew = %g", got)
	}
}
