package liberty

import (
	"fmt"
	"io"
)

// streamLexBuf is the streamLexer's fixed window size. Multi-byte constructs
// (strings, identifiers, comments) are consumed incrementally into a scratch
// buffer, so the window never needs to grow: lexer memory is O(buffer) plus
// the longest single token.
const streamLexBuf = 64 * 1024

// streamLexer produces the exact token stream of the string-based lexer
// while reading from an io.Reader through a fixed reusable window.
// Identifier and string token text is interned, so the bounded Liberty
// vocabulary (attribute and group names, repeated index lists) is allocated
// once per parse rather than once per occurrence.
type streamLexer struct {
	r        io.Reader
	buf      []byte
	pos, end int // live window is buf[pos:end]
	eof      bool
	err      error // first non-EOF read error (sticky)
	line     int
	scratch  []byte
	intern   map[string]string
}

func newStreamLexer(r io.Reader) *streamLexer {
	return &streamLexer{
		r:      r,
		buf:    make([]byte, streamLexBuf),
		line:   1,
		intern: make(map[string]string, 64),
	}
}

// ensure makes at least k bytes available at the window head, refilling from
// the reader as needed. It returns false once the input (or a failing
// reader) cannot supply them. k never exceeds the lookahead of a comment or
// continuation prefix, so the fixed window always has room.
func (lx *streamLexer) ensure(k int) bool {
	for lx.end-lx.pos < k {
		if lx.eof {
			return false
		}
		lx.fill()
	}
	return true
}

func (lx *streamLexer) fill() {
	if lx.pos > 0 {
		copy(lx.buf, lx.buf[lx.pos:lx.end])
		lx.end -= lx.pos
		lx.pos = 0
	}
	for {
		n, err := lx.r.Read(lx.buf[lx.end:])
		lx.end += n
		if err != nil {
			if err != io.EOF && lx.err == nil {
				lx.err = err
			}
			lx.eof = true
			return
		}
		if n > 0 {
			return
		}
	}
}

// str interns the scratch bytes; the []byte-keyed map lookup does not
// allocate, so repeated tokens cost nothing after their first appearance.
func (lx *streamLexer) str(b []byte) string {
	if s, ok := lx.intern[string(b)]; ok {
		return s
	}
	s := string(b)
	lx.intern[s] = s
	return s
}

func (lx *streamLexer) next() (token, error) {
	for lx.ensure(1) {
		c := lx.buf[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '/':
			if lx.ensure(2) {
				switch lx.buf[lx.pos+1] {
				case '*':
					startLine := lx.line
					lx.pos += 2
					nl := 0
					prevStar := false
					for {
						if !lx.ensure(1) {
							return token{}, fmt.Errorf("liberty: line %d: unterminated comment", startLine)
						}
						b := lx.buf[lx.pos]
						lx.pos++
						if b == '\n' {
							nl++
						}
						if prevStar && b == '/' {
							break
						}
						prevStar = b == '*'
					}
					lx.line = startLine + nl
					continue
				case '/':
					// Stop at (not past) the newline; the main loop counts it.
					for lx.ensure(1) && lx.buf[lx.pos] != '\n' {
						lx.pos++
					}
					continue
				}
			}
			// A lone '/' is an identifier byte, never a comment.
			return lx.ident(), nil
		case c == '\\':
			if lx.ensure(2) && lx.buf[lx.pos+1] == '\n' {
				lx.line++
				lx.pos += 2 // line continuation
				continue
			}
			if lx.ensure(3) && lx.buf[lx.pos+1] == '\r' && lx.buf[lx.pos+2] == '\n' {
				lx.line++
				lx.pos += 3 // CRLF line continuation
				continue
			}
			return token{}, fmt.Errorf("liberty: line %d: unexpected character %q", lx.line, c)
		case c == '"':
			lx.pos++
			lx.scratch = lx.scratch[:0]
			for {
				if !lx.ensure(1) {
					return token{}, fmt.Errorf("liberty: line %d: unterminated string", lx.line)
				}
				b := lx.buf[lx.pos]
				lx.pos++
				if b == '"' {
					break
				}
				if b == '\n' {
					lx.line++
				}
				lx.scratch = append(lx.scratch, b)
			}
			return token{tokString, lx.str(lx.scratch), lx.line}, nil
		case c == '{':
			lx.pos++
			return token{tokLBrace, "{", lx.line}, nil
		case c == '}':
			lx.pos++
			return token{tokRBrace, "}", lx.line}, nil
		case c == '(':
			lx.pos++
			return token{tokLParen, "(", lx.line}, nil
		case c == ')':
			lx.pos++
			return token{tokRParen, ")", lx.line}, nil
		case c == ':':
			lx.pos++
			return token{tokColon, ":", lx.line}, nil
		case c == ';':
			lx.pos++
			return token{tokSemi, ";", lx.line}, nil
		case c == ',':
			lx.pos++
			return token{tokComma, ",", lx.line}, nil
		default:
			if isIdentByte(c) {
				return lx.ident(), nil
			}
			return token{}, fmt.Errorf("liberty: line %d: unexpected character %q", lx.line, c)
		}
	}
	return token{tokEOF, "", lx.line}, nil
}

func (lx *streamLexer) ident() token {
	lx.scratch = lx.scratch[:0]
	for lx.ensure(1) && isIdentByte(lx.buf[lx.pos]) {
		lx.scratch = append(lx.scratch, lx.buf[lx.pos])
		lx.pos++
	}
	return token{tokIdent, lx.str(lx.scratch), lx.line}
}

// ParseASTReader parses Liberty source from r into its top-level group,
// streaming through a fixed reusable buffer: peak lexer memory is
// O(buffer)+O(result), independent of input length. Results and parse errors
// are identical to ParseASTLegacy on every input; a reader failure is
// surfaced as "liberty: read: ..." in preference to the truncation
// diagnostics the cut-short token stream would produce.
func ParseASTReader(r io.Reader) (*Group, error) {
	lx := newStreamLexer(r)
	g, err := parseTop(&parser{lx: lx})
	if lx.err != nil {
		return nil, fmt.Errorf("liberty: read: %w", lx.err)
	}
	if err != nil {
		return nil, err
	}
	return g, nil
}
