package bench

import (
	"fmt"
	"math/rand"

	"sllt/internal/cache"
	"sllt/internal/geom"
	"sllt/internal/geom/index"
	"sllt/internal/partition"
	"sllt/internal/rsmt"
	"sllt/internal/tree"
)

// AllocResult is one (kernel, sink-tier) row of the allocation-discipline
// trajectory: how many heap allocations — and how many bytes — one pass of
// the kernel costs. The kernels measured here are exactly the packages the
// hotpath analyzer annotates; the counts quantify what the // hot:
// annotations and their AllocsPerRun guards hold in place at workload scale.
type AllocResult struct {
	Kernel      string `json:"kernel"`
	N           int    `json:"n"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
}

// AllocReport is the top-level BENCH_6.json document.
type AllocReport struct {
	Schema  string        `json:"schema"`
	Seed    int64         `json:"seed"`
	Tiers   []int         `json:"tiers"`
	Results []AllocResult `json:"results"`
}

// RunAllocBench measures allocation counts and volume for the annotated hot
// kernels at each sink tier. One op is one full kernel pass over the tier's
// point set (n grid queries, one MST build, one Steinerization, one
// assignment sweep, one exact silhouette, n−1 octagon distances, one
// n-field cache-key hash), so rows are comparable with the BENCH_4.json
// timing trajectory. All inputs derive from seed.
func RunAllocBench(tiers []int, seed int64) AllocReport {
	rep := AllocReport{
		Schema: "sllt-alloc-bench/v1",
		Seed:   seed,
		Tiers:  append([]int(nil), tiers...),
	}
	add := func(kernel string, n, reps int, op func(i int)) {
		res := AllocResult{Kernel: kernel, N: n}
		res.NsPerOp, res.AllocsPerOp, res.BytesPerOp = measureAlloc(reps, op)
		rep.Results = append(rep.Results, res)
	}
	for _, n := range tiers {
		rng := rand.New(rand.NewSource(seed + int64(n)))
		pts := randomPoints(n, rng)
		reps := kernelReps(n)

		// geom/index: n nearest-neighbor queries against a static grid.
		g := index.New(pts)
		add("grid-nearest", n, reps, func(int) {
			for _, p := range pts {
				g.Nearest(p, nil)
			}
		})

		// rsmt: grid Prim and the candidate-queue Steinerization (private
		// tree clones; cloning stays outside the measured region).
		add("mst", n, reps, func(int) { rsmt.MST(pts) })
		base := rsmt.MSTTree(kernelNet(pts))
		fastTrees := make([]*tree.Tree, reps)
		for i := range fastTrees {
			fastTrees[i] = base.Clone()
		}
		add("steinerize", n, reps, func(i int) { rsmt.Steinerize(fastTrees[i]) })

		// partition: one assignment sweep and one exact silhouette with the
		// flow's fanout-derived cluster count.
		k := n / 32
		if k < 2 {
			k = 2
		}
		centers, assign := partition.KMeansP(pts, k, 2, seed, 1)
		scratch := append([]int(nil), assign...)
		add("kmeans-assign", n, reps, func(int) {
			partition.AssignPoints(pts, centers, scratch, 1)
		})
		add("silhouette-exact", n, reps, func(int) {
			partition.SilhouetteExact(pts, assign, k, 1)
		})

		// geom: n−1 octagon-pair distances, the DME merge-cost inner call.
		octs := make([]geom.Octagon, n)
		for i, p := range pts {
			octs[i] = geom.OctFromPoint(p).Expand(float64(i%5) + 1)
		}
		add("octagon-dist", n, reps, func(int) {
			for i := 1; i < n; i++ {
				_ = octs[i-1].Dist(octs[i])
			}
		})

		// cache: one n-field key hash over a reused hasher.
		h := cache.NewHasher("alloc-bench")
		add("hasher", n, reps, func(int) {
			for _, p := range pts {
				h.F64(p.X).F64(p.Y)
			}
			h.Sum()
			h.Reset("alloc-bench")
		})
	}
	return rep
}

// FormatAllocReport renders the report as an aligned text table for the
// benchtab console summary.
func FormatAllocReport(r AllocReport) string {
	out := fmt.Sprintf("Kernel allocation benchmarks (seed %d)\n", r.Seed)
	out += fmt.Sprintf("%-18s %9s %14s %12s %14s\n",
		"kernel", "n", "ns/op", "allocs/op", "bytes/op")
	for _, res := range r.Results {
		out += fmt.Sprintf("%-18s %9d %14d %12d %14d\n",
			res.Kernel, res.N, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
	}
	return out
}
