package bench

import (
	"fmt"
	"strings"
	"time"

	"sllt/internal/baseline"
	"sllt/internal/cache"
	"sllt/internal/cts"
	"sllt/internal/designgen"
	"sllt/internal/obs"
)

// FlowNames in paper column order.
var FlowNames = []string{"Ours", "Com.", "OR."}

// FlowOptions returns the three competing flows keyed by FlowNames entry.
// workers is threaded into every flow's cts.Options so each synthesis
// parallelizes its per-cluster builds; results are byte-identical for any
// value (<= 1 serial).
func FlowOptions(workers int) map[string]cts.Options {
	flows := map[string]cts.Options{
		"Ours": cts.DefaultOptions(),
		"Com.": baseline.CommercialLike(),
		"OR.":  baseline.OpenROADLike(),
	}
	for name, opts := range flows {
		opts.Workers = workers
		flows[name] = opts
	}
	return flows
}

// FlowResult is one (design, flow) cell group of Tables 6/7.
type FlowResult struct {
	Design  string
	Flow    string
	Latency float64 // ps
	Skew    float64 // ps
	Buffers int
	BufArea float64 // µm²
	Cap     float64 // fF
	WL      float64 // µm
	Runtime float64 // s
	// Stages holds per-stage wall-clock sums (span name -> ns), filled
	// only by RunFlowsObs; FormatFlowTable ignores it, so the default
	// table output is identical with and without observability.
	Stages map[string]int64 // unit: ns
	// CacheStages holds this cell's stage-cache traffic (cache stage name
	// -> counter delta), filled only when a store is attached via
	// RunFlowsCached. FormatStageTable appends hit-rate columns from it.
	CacheStages map[string]cache.StageStats
	Err         error
}

// RunFlows synthesizes every design with every flow. Designs are generated
// from their Table 4 statistics with the given seed. The (design, flow)
// cells run serially — their Runtime column is the wall clock the tables
// compare, so they must not compete for cores — while each synthesis
// spreads its own cluster builds over the given workers.
func RunFlows(specs []designgen.Spec, seed int64, workers int) []FlowResult {
	return runFlows(specs, seed, workers, false, nil)
}

// RunFlowsObs is RunFlows with observability: each (design, flow) cell
// synthesizes under its own obs.Recorder and its row carries the per-stage
// wall-clock sums from the recorder's span tree. The QoR columns are
// identical to RunFlows — the recorder observes, it never feeds back.
func RunFlowsObs(specs []designgen.Spec, seed int64, workers int) []FlowResult {
	return runFlows(specs, seed, workers, true, nil)
}

// RunFlowsCached runs every cell against one shared content-addressed store:
// content keys separate the flows, so sharing is safe, and a second
// invocation over the same store replays instead of recomputing. Each row
// carries its own stats delta (CacheStages) for the hit-rate columns. QoR
// columns are byte-identical to the uncached runs — the cache replays, it
// never feeds back (the cts byte-identity property tests enforce this).
func RunFlowsCached(specs []designgen.Spec, seed int64, workers int, withObs bool, store *cache.Cache) []FlowResult {
	return runFlows(specs, seed, workers, withObs, store)
}

func runFlows(specs []designgen.Spec, seed int64, workers int, withObs bool, store *cache.Cache) []FlowResult {
	flows := FlowOptions(workers)
	var out []FlowResult
	for _, spec := range specs {
		d := designgen.Generate(spec, seed)
		for _, fname := range FlowNames {
			opts := flows[fname]
			var rec *obs.Recorder
			if withObs {
				rec = obs.New(nil)
				opts.Obs = rec
			}
			var prev cache.Stats
			if store != nil {
				opts.Cache = store
				prev = store.Stats()
			}
			start := time.Now()
			res, err := cts.Run(d, opts)
			fr := FlowResult{Design: spec.Name, Flow: fname, Runtime: time.Since(start).Seconds(), Err: err}
			if err == nil {
				fr.Latency = res.Report.MaxLatency
				fr.Skew = res.Report.Skew
				fr.Buffers = res.Report.Buffers
				fr.BufArea = res.Report.BufArea
				fr.Cap = res.Report.ClockCap
				fr.WL = res.Report.WL
			}
			if rec != nil {
				fr.Stages = rec.Snapshot().StageNs()
			}
			if store != nil {
				fr.CacheStages = store.Stats().Sub(prev).Stages
			}
			out = append(out, fr)
		}
	}
	return out
}

// StageNames are the per-stage columns of FormatStageTable, in flow order:
// the level loop's partitioning and cluster builds, the top-level net, and
// the final STA pass.
var StageNames = []string{"partition", "clusters", "top_net", "timing"}

// stageCacheNames maps each span-stage column to the content-addressed
// cache stage whose traffic it reports (span names predate the cache's
// stage constants; "clusters" spans cover the "cluster_build" stage).
var stageCacheNames = map[string]string{
	"partition": "partition",
	"clusters":  "cluster_build",
	"top_net":   "top_net",
	"timing":    "timing",
}

// FormatStageTable renders the per-stage wall clock of RunFlowsObs results
// as a companion table to FormatFlowTable. Rows without stage data
// (RunFlows results, failed cells) are skipped. When any row ran against a
// stage cache (RunFlowsCached), each stage additionally gets a hit-rate
// column, so a warm re-invocation shows replay economics next to the wall
// clock it saved.
func FormatStageTable(title string, results []FlowResult) string {
	cached := false
	for _, r := range results {
		if r.CacheStages != nil {
			cached = true
			break
		}
	}
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%-10s %-5s", "Case", "Flow")
	for _, s := range StageNames {
		fmt.Fprintf(&b, " %12s", s+"(s)")
		if cached {
			fmt.Fprintf(&b, " %5s", "hit%")
		}
	}
	b.WriteString("\n")
	for _, r := range results {
		if r.Err != nil || r.Stages == nil {
			continue
		}
		fmt.Fprintf(&b, "%-10s %-5s", r.Design, r.Flow)
		for _, s := range StageNames {
			fmt.Fprintf(&b, " %12.3f", float64(r.Stages[s])/1e9)
			if cached {
				st := r.CacheStages[stageCacheNames[s]]
				if st.Hits+st.Misses == 0 {
					fmt.Fprintf(&b, " %5s", "-")
				} else {
					fmt.Fprintf(&b, " %4.0f%%", 100*st.HitRate())
				}
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatFlowTable renders results in the paper's Table 6/7 layout, including
// the trailing "Avg." row of per-metric ratios normalized to Ours.
func FormatFlowTable(title string, results []FlowResult) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%-10s %-5s %9s %8s %6s %9s %9s %11s %8s\n",
		"Case", "Flow", "Lat(ps)", "Skew(ps)", "#Buf", "Area(um2)", "Cap(fF)", "WL(um)", "RT(s)")

	byDesign := map[string][]FlowResult{}
	var order []string
	for _, r := range results {
		if _, ok := byDesign[r.Design]; !ok {
			order = append(order, r.Design)
		}
		byDesign[r.Design] = append(byDesign[r.Design], r)
	}
	// Ratio accumulators per flow.
	type acc struct {
		lat, skew, buf, area, cap, wl, rt float64
		n                                 int
	}
	ratios := map[string]*acc{}
	for _, f := range FlowNames {
		ratios[f] = &acc{}
	}

	for _, dn := range order {
		var ours *FlowResult
		for i := range byDesign[dn] {
			if byDesign[dn][i].Flow == "Ours" {
				ours = &byDesign[dn][i]
			}
		}
		for _, r := range byDesign[dn] {
			if r.Err != nil {
				fmt.Fprintf(&b, "%-10s %-5s ERROR: %v\n", r.Design, r.Flow, r.Err)
				continue
			}
			fmt.Fprintf(&b, "%-10s %-5s %9.1f %8.1f %6d %9.1f %9.1f %11.1f %8.2f\n",
				r.Design, r.Flow, r.Latency, r.Skew, r.Buffers, r.BufArea, r.Cap, r.WL, r.Runtime)
			if ours != nil && ours.Err == nil && ours.Latency > 0 {
				a := ratios[r.Flow]
				a.lat += r.Latency / ours.Latency
				a.skew += safeRatio(r.Skew, ours.Skew)
				a.buf += float64(r.Buffers) / float64(ours.Buffers)
				a.area += r.BufArea / ours.BufArea
				a.cap += r.Cap / ours.Cap
				a.wl += r.WL / ours.WL
				a.rt += safeRatio(r.Runtime, ours.Runtime)
				a.n++
			}
		}
	}
	b.WriteString("---- Avg. ratios (normalized to Ours) ----\n")
	for _, f := range FlowNames {
		a := ratios[f]
		if a.n == 0 {
			continue
		}
		n := float64(a.n)
		fmt.Fprintf(&b, "%-10s %-5s %9.3f %8.3f %6.3f %9.3f %9.3f %11.3f %8.3f\n",
			"Avg.", f, a.lat/n, a.skew/n, a.buf/n, a.area/n, a.cap/n, a.wl/n, a.rt/n)
	}
	return b.String()
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 1
	}
	return a / b
}

// Table6Specs returns the six open designs of Table 6.
func Table6Specs() []designgen.Spec {
	return designgen.Table4()[:6]
}

// Table7Specs returns the four ysyx designs of Table 7.
func Table7Specs() []designgen.Spec {
	return designgen.Table4()[6:]
}

// ScaleSpec shrinks a design spec by the given factor (for fast benchmark
// defaults on the very large ysyx designs), preserving utilization.
func ScaleSpec(s designgen.Spec, factor float64) designgen.Spec {
	if factor >= 1 || factor <= 0 {
		return s
	}
	s.Name = fmt.Sprintf("%s@%.0f%%", s.Name, factor*100)
	s.Insts = int(float64(s.Insts) * factor)
	s.FFs = int(float64(s.FFs) * factor)
	if s.FFs < 10 {
		s.FFs = 10
	}
	if s.Insts < s.FFs {
		s.Insts = s.FFs
	}
	return s
}
