package bench

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"time"

	"sllt/internal/geom"
	"sllt/internal/partition"
	"sllt/internal/rsmt"
	"sllt/internal/tree"
)

// KernelResult is one (kernel, sink-tier) measurement in the BENCH_*.json
// trajectory: the accelerated kernel's cost, and — when the tier is small
// enough to afford the quadratic reference — the retained reference's cost
// and the resulting speedup.
type KernelResult struct {
	Kernel      string  `json:"kernel"`
	N           int     `json:"n"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	RefNsPerOp  int64   `json:"ref_ns_per_op,omitempty"`
	RefAllocs   int64   `json:"ref_allocs_per_op,omitempty"`
	Speedup     float64 `json:"speedup,omitempty"`
}

// KernelReport is the top-level BENCH_*.json document.
type KernelReport struct {
	Schema  string         `json:"schema"`
	Seed    int64          `json:"seed"`
	Tiers   []int          `json:"tiers"`
	RefMaxN int            `json:"ref_max_n"`
	Results []KernelResult `json:"results"`
}

// randomPoints draws n points uniformly over a square whose side grows with
// sqrt(n) so instance density stays constant across tiers (≈100 um² per
// point), matching how real designs scale. Coordinates are snapped to the
// placement grid like the net generator's.
func randomPoints(n int, rng *rand.Rand) []geom.Point {
	side := math.Sqrt(float64(n)) * 10 // unit: um
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(snap(rng.Float64()*side), snap(rng.Float64()*side))
	}
	return pts
}

// kernelNet wraps points into a single clock net: point 0 drives the rest.
func kernelNet(pts []geom.Point) *tree.Net {
	net := &tree.Net{Name: "bench", Source: pts[0]}
	net.Sinks = make([]tree.PinSink, len(pts)-1)
	for i := range net.Sinks {
		net.Sinks[i] = tree.PinSink{
			Name: fmt.Sprintf("s%d", i),
			Loc:  pts[i+1],
			Cap:  1.5,
		}
	}
	return net
}

// kernelReps picks a deterministic repetition count per tier: enough runs to
// smooth scheduler noise on cheap ops without making the 100k tier crawl.
func kernelReps(n int) int {
	switch {
	case n <= 1000:
		return 8
	case n <= 10000:
		return 3
	default:
		return 1
	}
}

// measure times reps executions of run (op(i) receives the repetition index
// so callers can hand each rep pre-built private state) and returns ns/op
// and heap-allocations/op. Allocations come from the runtime's Mallocs
// counter delta — the same source testing.AllocsPerRun reads — so the
// number is exact, not sampled.
func measure(reps int, op func(i int)) (nsPerOp, allocsPerOp int64) {
	nsPerOp, allocsPerOp, _ = measureAlloc(reps, op)
	return nsPerOp, allocsPerOp
}

// measureAlloc is measure plus heap bytes/op (TotalAlloc delta), for the
// allocation-discipline trajectory where the size of what slips through
// matters as much as the count.
func measureAlloc(reps int, op func(i int)) (nsPerOp, allocsPerOp, bytesPerOp int64) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < reps; i++ {
		op(i)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	r := int64(reps)
	return elapsed.Nanoseconds() / r,
		int64(after.Mallocs-before.Mallocs) / r,
		int64(after.TotalAlloc-before.TotalAlloc) / r
}

// RunKernels measures the accelerated spatial kernels against their retained
// exhaustive references at each sink tier. References are quadratic, so they
// only run on tiers ≤ refMaxN; above that the fast column stands alone and
// the trajectory shows absolute scaling instead of a ratio. All inputs
// derive from seed, so reruns measure the identical workload.
func RunKernels(tiers []int, seed int64, refMaxN int) KernelReport {
	rep := KernelReport{
		Schema:  "sllt-kernel-bench/v1",
		Seed:    seed,
		Tiers:   append([]int(nil), tiers...),
		RefMaxN: refMaxN,
	}
	for _, n := range tiers {
		rng := rand.New(rand.NewSource(seed + int64(n)))
		pts := randomPoints(n, rng)
		reps := kernelReps(n)
		withRef := n <= refMaxN

		// MST: grid-accelerated Prim vs the O(n²) scan.
		res := KernelResult{Kernel: "mst", N: n}
		res.NsPerOp, res.AllocsPerOp = measure(reps, func(int) { rsmt.MST(pts) })
		if withRef {
			res.RefNsPerOp, res.RefAllocs = measure(reps, func(int) { rsmt.MSTExhaustive(pts) })
			res.Speedup = speedup(res.RefNsPerOp, res.NsPerOp)
		}
		rep.Results = append(rep.Results, res)

		// Steinerize: candidate queue vs full-tree rescan, both starting
		// from private clones of the same MST topology (cloning happens
		// outside the timed region).
		base := rsmt.MSTTree(kernelNet(pts))
		clones := func(k int) []*tree.Tree {
			ts := make([]*tree.Tree, k)
			for i := range ts {
				ts[i] = base.Clone()
			}
			return ts
		}
		res = KernelResult{Kernel: "steinerize", N: n}
		fastTrees := clones(reps)
		res.NsPerOp, res.AllocsPerOp = measure(reps, func(i int) { rsmt.Steinerize(fastTrees[i]) })
		if withRef {
			refTrees := clones(reps)
			res.RefNsPerOp, res.RefAllocs = measure(reps, func(i int) { rsmt.SteinerizeReference(refTrees[i]) })
			res.Speedup = speedup(res.RefNsPerOp, res.NsPerOp)
		}
		rep.Results = append(rep.Results, res)

		// k-means assignment: one full nearest-center pass with the flow's
		// fanout-derived cluster count, grid-indexed vs exhaustive. A short
		// k-means run first moves the centers to realistic positions.
		k := n / 32
		if k < 2 {
			k = 2
		}
		centers, assign := partition.KMeansP(pts, k, 2, seed, 1)
		res = KernelResult{Kernel: "kmeans-assign", N: n}
		fastAssign := append([]int(nil), assign...)
		res.NsPerOp, res.AllocsPerOp = measure(reps, func(int) {
			partition.AssignPoints(pts, centers, fastAssign, 1)
		})
		if withRef {
			refAssign := append([]int(nil), assign...)
			res.RefNsPerOp, res.RefAllocs = measure(reps, func(int) {
				partition.AssignPointsExhaustive(pts, centers, refAssign)
			})
			res.Speedup = speedup(res.RefNsPerOp, res.NsPerOp)
		}
		rep.Results = append(rep.Results, res)

		// Silhouette: stratified-sample estimator vs the exact O(n²) score.
		res = KernelResult{Kernel: "silhouette", N: n}
		res.NsPerOp, res.AllocsPerOp = measure(reps, func(int) {
			partition.SilhouetteP(pts, assign, k, 1)
		})
		if withRef {
			res.RefNsPerOp, res.RefAllocs = measure(reps, func(int) {
				partition.SilhouetteExact(pts, assign, k, 1)
			})
			res.Speedup = speedup(res.RefNsPerOp, res.NsPerOp)
		}
		rep.Results = append(rep.Results, res)
	}
	return rep
}

func speedup(refNs, fastNs int64) float64 {
	if fastNs <= 0 {
		return 0
	}
	// Two decimals is plenty for a trend line and keeps the JSON diff-stable.
	return math.Round(float64(refNs)/float64(fastNs)*100) / 100
}

// FormatKernelReport renders the report as an aligned text table for the
// benchtab console summary.
func FormatKernelReport(r KernelReport) string {
	out := fmt.Sprintf("Kernel benchmarks (seed %d, ref up to n=%d)\n", r.Seed, r.RefMaxN)
	out += fmt.Sprintf("%-14s %9s %14s %12s %14s %9s\n",
		"kernel", "n", "ns/op", "allocs/op", "ref ns/op", "speedup")
	for _, res := range r.Results {
		ref, sp := "-", "-"
		if res.RefNsPerOp > 0 {
			ref = fmt.Sprintf("%d", res.RefNsPerOp)
			sp = fmt.Sprintf("%.2fx", res.Speedup)
		}
		out += fmt.Sprintf("%-14s %9d %14d %12d %14s %9s\n",
			res.Kernel, res.N, res.NsPerOp, res.AllocsPerOp, ref, sp)
	}
	return out
}
