package bench

import (
	"math/rand"
	"strings"
	"testing"

	"sllt/internal/designgen"
	"sllt/internal/dme"
)

func TestRandomNetRespectsConfig(t *testing.T) {
	cfg := DefaultNetConfig()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		net := cfg.Random(rng)
		if err := net.Validate(); err != nil {
			t.Fatal(err)
		}
		if len(net.Sinks) < cfg.MinPins || len(net.Sinks) > cfg.MaxPins {
			t.Fatalf("pin count %d outside [%d,%d]", len(net.Sinks), cfg.MinPins, cfg.MaxPins)
		}
		for _, s := range net.Sinks {
			if s.Loc.X < 0 || s.Loc.X > cfg.Box || s.Loc.Y < 0 || s.Loc.Y > cfg.Box {
				t.Fatalf("pin outside box: %v", s.Loc)
			}
		}
	}
}

func TestTable1(t *testing.T) {
	rows, err := RunTable1(Table1Net(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	get := func(name string) AlgoRow {
		for _, r := range rows {
			if r.Name == name {
				return r
			}
		}
		t.Fatalf("row %s missing", name)
		return AlgoRow{}
	}
	// The orderings Table 1 demonstrates:
	if zst := get("ZST"); zst.Metrics.Gamma > 1+1e-9 {
		t.Errorf("ZST skewness = %g, want 1", zst.Metrics.Gamma)
	}
	if salt := get("R-SALT"); salt.Metrics.Alpha > 1+1e-9 {
		t.Errorf("R-SALT shallowness = %g, want 1", salt.Metrics.Alpha)
	}
	flute := get("FLUTE*")
	for _, r := range rows {
		if r.Metrics.Beta < flute.Metrics.Beta-1e-9 {
			t.Errorf("%s lighter (β=%.3f) than the RSMT reference (%.3f)", r.Name, r.Metrics.Beta, flute.Metrics.Beta)
		}
	}
	cbs := get("CBS")
	zst := get("ZST")
	if cbs.Metrics.Alpha >= zst.Metrics.Alpha {
		t.Errorf("CBS alpha %.3f not below ZST %.3f", cbs.Metrics.Alpha, zst.Metrics.Alpha)
	}
	if cbs.Metrics.Mean() >= get("H-tree").Metrics.Mean() {
		t.Errorf("CBS mean %.3f not below H-tree %.3f", cbs.Metrics.Mean(), get("H-tree").Metrics.Mean())
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "CBS") || !strings.Contains(out, "α") {
		t.Error("format output incomplete")
	}
}

func TestTable2ShapeMatchesPaper(t *testing.T) {
	cfg := DefaultT23Config()
	cfg.Nets = 40
	cfg.Methods = []dme.TopoMethod{dme.GreedyDist}
	cells, err := RunTable2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("cells = %d", len(cells))
	}
	// The paper's shape: CBS at or below R-SALT wirelength at relaxed and
	// moderate bounds; near parity at the stringent bound.
	for _, c := range cells {
		if c.Bound >= 10 && c.CBS > c.RSALT*1.01 {
			t.Errorf("bound %g: CBS WL %.1f above R-SALT %.1f", c.Bound, c.CBS, c.RSALT)
		}
		if c.Bound == 5 && c.CBS > c.RSALT*1.05 {
			t.Errorf("stringent bound: CBS WL %.1f far above R-SALT %.1f", c.CBS, c.RSALT)
		}
	}
	_ = FormatTable2(cells, cfg)
}

func TestTable3ShapeMatchesPaper(t *testing.T) {
	cfg := DefaultT23Config()
	cfg.Nets = 40
	cells, err := RunTable3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		// Who wins: CBS reduces WL, cap and delay versus BST-DME at every
		// bound (the paper reports 15-27% reductions).
		if c.CBSWL >= c.BSTWL {
			t.Errorf("bound %g: CBS WL %.1f not below BST %.1f", c.Bound, c.CBSWL, c.BSTWL)
		}
		if c.CBSCap >= c.BSTCap {
			t.Errorf("bound %g: CBS cap %.1f not below BST %.1f", c.Bound, c.CBSCap, c.BSTCap)
		}
		if c.CBSDelay >= c.BSTDelay {
			t.Errorf("bound %g: CBS delay %.2f not below BST %.2f", c.Bound, c.CBSDelay, c.BSTDelay)
		}
		// Roughly paper-sized factors: at least 5% WL reduction.
		if red := (c.BSTWL - c.CBSWL) / c.BSTWL; red < 0.05 {
			t.Errorf("bound %g: WL reduction only %.1f%%", c.Bound, red*100)
		}
	}
	_ = FormatTable3(cells, cfg)
}

func TestRunFlowsSmall(t *testing.T) {
	spec := ScaleSpec(Table6Specs()[0], 0.2) // s38584 at 20%
	rs := RunFlows([]designgen.Spec{spec}, 1, 1)
	if len(rs) != 3 {
		t.Fatalf("results = %d", len(rs))
	}
	for _, r := range rs {
		if r.Err != nil {
			t.Fatalf("%s/%s: %v", r.Design, r.Flow, r.Err)
		}
		if r.Latency <= 0 || r.Buffers == 0 {
			t.Errorf("%s/%s: implausible result %+v", r.Design, r.Flow, r)
		}
	}
	out := FormatFlowTable("test", rs)
	if !strings.Contains(out, "Avg.") {
		t.Error("missing Avg. row")
	}
}
