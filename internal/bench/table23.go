package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"sllt/internal/core"
	"sllt/internal/dme"
	"sllt/internal/parallel"
	"sllt/internal/salt"
	"sllt/internal/tech"
	"sllt/internal/timing"
)

// T23Config parameterizes the random-net comparisons of Tables 2 and 3.
type T23Config struct {
	Nets    int // nets per (method, bound) cell; the paper uses 10 000
	Seed    int64
	Bounds  []float64 // skew bounds in ps (paper: 80, 10, 5)
	Methods []dme.TopoMethod
	Net     NetConfig
	Tech    tech.Tech
	SALTEps float64
	// Workers fans the independent (method, bound) cells out over
	// goroutines. Each cell owns a private RNG seeded from Seed alone, so
	// cell results are identical for any Workers value; <= 1 runs serially.
	Workers int
}

// DefaultT23Config returns the paper's parameters with a reduced default
// net count (raise Nets to 10000 for the full experiment).
func DefaultT23Config() T23Config {
	return T23Config{
		Nets:    400,
		Seed:    1,
		Bounds:  []float64{80, 10, 5},
		Methods: []dme.TopoMethod{dme.GreedyDist, dme.GreedyMerge, dme.BiPartition},
		Net:     DefaultNetConfig(),
		Tech:    tech.Default28nm(),
		SALTEps: 0.1,
	}
}

// T2Cell is one Table 2 cell: mean wirelengths of R-SALT and CBS for a
// (method, bound) pair, over cfg.Nets random nets.
type T2Cell struct {
	Method dme.TopoMethod
	Bound  float64
	RSALT  float64
	CBS    float64
}

// ReducePct returns the paper's "Reduce" row: CBS improvement over R-SALT.
func (c T2Cell) ReducePct() float64 {
	if c.RSALT == 0 {
		return 0
	}
	return (c.RSALT - c.CBS) / c.RSALT * 100
}

// RunTable2 reproduces Table 2: wirelength comparison between R-SALT and
// CBS across topology generators and skew bounds. The (method, bound)
// cells are independent — each re-derives its net stream from cfg.Seed —
// so they fan out over cfg.Workers, each task writing only its own cell.
func RunTable2(cfg T23Config) ([]T2Cell, error) {
	type cellSpec struct {
		method dme.TopoMethod
		bound  float64
	}
	var specs []cellSpec
	for _, method := range cfg.Methods {
		for _, bound := range cfg.Bounds {
			specs = append(specs, cellSpec{method, bound})
		}
	}
	out := make([]T2Cell, len(specs))
	err := parallel.ForEach(cfg.Workers, len(specs), func(ci int) error {
		method, bound := specs[ci].method, specs[ci].bound
		rng := rand.New(rand.NewSource(cfg.Seed))
		var sumS, sumC float64
		for i := 0; i < cfg.Nets; i++ {
			net := cfg.Net.Random(rng)
			sumS += salt.Build(net, cfg.SALTEps).Wirelength()
			cbs, err := core.Build(net, core.Options{
				DME:        dme.Options{Model: dme.Elmore, SkewBound: bound, Tech: cfg.Tech},
				TopoMethod: method,
				SALTEps:    cfg.SALTEps,
			})
			if err != nil {
				return fmt.Errorf("table2 %v/%gps net %d: %w", method, bound, i, err)
			}
			sumC += cbs.Wirelength()
		}
		n := float64(cfg.Nets)
		out[ci] = T2Cell{Method: method, Bound: bound, RSALT: sumS / n, CBS: sumC / n}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FormatTable2 renders cells in the paper's Table 2 layout.
func FormatTable2(cells []T2Cell, cfg T23Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Wirelength (um) comparison between R-SALT and CBS (%d nets/cell)\n", cfg.Nets)
	byMethod := map[dme.TopoMethod][]T2Cell{}
	var order []dme.TopoMethod
	for _, c := range cells {
		if _, ok := byMethod[c.Method]; !ok {
			order = append(order, c.Method)
		}
		byMethod[c.Method] = append(byMethod[c.Method], c)
	}
	for _, m := range order {
		fmt.Fprintf(&b, "-- %v --\n", m)
		cs := byMethod[m]
		fmt.Fprintf(&b, "%-10s", "Skew(ps)")
		for _, c := range cs {
			fmt.Fprintf(&b, " %8.0f", c.Bound)
		}
		fmt.Fprintf(&b, "\n%-10s", "R-SALT")
		for _, c := range cs {
			fmt.Fprintf(&b, " %8.1f", c.RSALT)
		}
		fmt.Fprintf(&b, "\n%-10s", "CBS")
		for _, c := range cs {
			fmt.Fprintf(&b, " %8.1f", c.CBS)
		}
		fmt.Fprintf(&b, "\n%-10s", "Reduce")
		for _, c := range cs {
			fmt.Fprintf(&b, " %7.2f%%", c.ReducePct())
		}
		b.WriteString("\n")
	}
	return b.String()
}

// T3Cell is one Table 3 column: BST-DME vs CBS on wirelength, load
// capacitance and wire delay at one skew bound.
type T3Cell struct {
	Bound                   float64
	BSTWL, BSTCap, BSTDelay float64
	CBSWL, CBSCap, CBSDelay float64
}

// RunTable3 reproduces Table 3: BST-DME vs CBS under the Greedy-Dist
// topology. Load capacitance is Σ pin caps + c·WL; wire delay is the
// maximum unbuffered Elmore sink delay. Like Table 2, the per-bound cells
// re-derive their net streams from cfg.Seed and fan out over cfg.Workers.
func RunTable3(cfg T23Config) ([]T3Cell, error) {
	out := make([]T3Cell, len(cfg.Bounds))
	err := parallel.ForEach(cfg.Workers, len(cfg.Bounds), func(ci int) error {
		bound := cfg.Bounds[ci]
		rng := rand.New(rand.NewSource(cfg.Seed))
		var cell T3Cell
		cell.Bound = bound
		for i := 0; i < cfg.Nets; i++ {
			net := cfg.Net.Random(rng)
			dopts := dme.Options{Model: dme.Elmore, SkewBound: bound, Tech: cfg.Tech}

			topo := dme.GenTopo(net, dme.GreedyDist, dopts.LengthBudget(net))
			bst, err := dme.Build(net, topo, dopts)
			if err != nil {
				return fmt.Errorf("table3 BST %gps net %d: %w", bound, i, err)
			}
			cbs, err := core.Build(net, core.Options{
				DME: dopts, TopoMethod: dme.GreedyDist, SALTEps: cfg.SALTEps,
			})
			if err != nil {
				return fmt.Errorf("table3 CBS %gps net %d: %w", bound, i, err)
			}
			cell.BSTWL += bst.Wirelength()
			cell.CBSWL += cbs.Wirelength()
			cell.BSTCap += net.TotalPinCap() + cfg.Tech.WireCap(bst.Wirelength())
			cell.CBSCap += net.TotalPinCap() + cfg.Tech.WireCap(cbs.Wirelength())
			bd, _ := timing.Unbuffered(bst, cfg.Tech)
			cd, _ := timing.Unbuffered(cbs, cfg.Tech)
			cell.BSTDelay += bd
			cell.CBSDelay += cd
		}
		n := float64(cfg.Nets)
		cell.BSTWL /= n
		cell.CBSWL /= n
		cell.BSTCap /= n
		cell.CBSCap /= n
		cell.BSTDelay /= n
		cell.CBSDelay /= n
		out[ci] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FormatTable3 renders cells in the paper's Table 3 layout.
func FormatTable3(cells []T3Cell, cfg T23Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: BST-DME vs CBS on wirelength, cap, wire delay (%d nets/cell)\n", cfg.Nets)
	red := func(a, c float64) float64 {
		if a == 0 {
			return 0
		}
		return (a - c) / a * 100
	}
	sections := []struct {
		name string
		get  func(T3Cell) (bst, cbs float64)
	}{
		{"Wirelength (um)", func(c T3Cell) (float64, float64) { return c.BSTWL, c.CBSWL }},
		{"Cap (fF)", func(c T3Cell) (float64, float64) { return c.BSTCap, c.CBSCap }},
		{"Wire Delay (ps)", func(c T3Cell) (float64, float64) { return c.BSTDelay, c.CBSDelay }},
	}
	for _, sec := range sections {
		fmt.Fprintf(&b, "-- %s --\n%-10s", sec.name, "Skew(ps)")
		for _, c := range cells {
			fmt.Fprintf(&b, " %8.0f", c.Bound)
		}
		fmt.Fprintf(&b, "\n%-10s", "BST-DME")
		for _, c := range cells {
			bst, _ := sec.get(c)
			fmt.Fprintf(&b, " %8.1f", bst)
		}
		fmt.Fprintf(&b, "\n%-10s", "CBS")
		for _, c := range cells {
			_, cbs := sec.get(c)
			fmt.Fprintf(&b, " %8.1f", cbs)
		}
		fmt.Fprintf(&b, "\n%-10s", "Reduce")
		for _, c := range cells {
			bst, cbs := sec.get(c)
			fmt.Fprintf(&b, " %7.2f%%", red(bst, cbs))
		}
		b.WriteString("\n")
	}
	return b.String()
}
