package bench

import (
	"crypto/sha256"
	"fmt"
	"time"

	"sllt/internal/cache"
	"sllt/internal/cts"
	"sllt/internal/design"
	"sllt/internal/designgen"
)

// CacheBenchResult is one (design, mode) row of the BENCH_5.json stage-cache
// trajectory. The cold/warm pair measures full-replay economics; the eco
// rows measure incremental re-runs after a small placement change. Every
// row carries the exported DEF's digest so the committed artifact doubles
// as byte-identity evidence: warm must equal cold, and eco must equal the
// uncached reference run of the moved design.
type CacheBenchResult struct {
	Design         string  `json:"design"`
	Mode           string  `json:"mode"` // cold | warm | eco_cold | eco | eco_ref
	NsPerRun       int64   `json:"ns_per_run"`
	Speedup        float64 `json:"speedup,omitempty"` // vs the tier's uncached cost
	ClusterHits    int64   `json:"cluster_hits"`
	ClusterMisses  int64   `json:"cluster_misses"`
	ClusterHitRate float64 `json:"cluster_hit_rate"`
	DefSHA256      string  `json:"def_sha256"`
}

// CacheBenchReport is the top-level BENCH_5.json document.
type CacheBenchReport struct {
	Schema        string             `json:"schema"`
	Seed          int64              `json:"seed"`
	EcoMovedSinks int                `json:"eco_moved_sinks"`
	Results       []CacheBenchResult `json:"results"`
}

// cacheBenchStage is the cluster-build stage name in cache stats (the
// driver's per-cluster unit of incremental work).
const cacheBenchStage = "cluster_build"

// cacheBenchRun synthesizes d once and reports wall clock, DEF digest, and
// the store's stats delta attributable to this run (zero when store is nil).
func cacheBenchRun(d *design.Design, opts cts.Options, store *cache.Cache) (int64, string, cache.Stats, error) {
	var prev cache.Stats
	if store != nil {
		opts.Cache = store
		prev = store.Stats()
	}
	start := time.Now()
	res, err := cts.Run(d, opts)
	ns := time.Since(start).Nanoseconds()
	if err != nil {
		return 0, "", cache.Stats{}, err
	}
	def := cts.ExportDEF(d, res).WriteDEF()
	sha := fmt.Sprintf("%x", sha256.Sum256([]byte(def)))
	var delta cache.Stats
	if store != nil {
		delta = store.Stats().Sub(prev)
	}
	return ns, sha, delta, nil
}

func cacheBenchRow(design, mode string, ns int64, sha string, delta cache.Stats) CacheBenchResult {
	cs := delta.Stages[cacheBenchStage]
	return CacheBenchResult{
		Design:         design,
		Mode:           mode,
		NsPerRun:       ns,
		ClusterHits:    cs.Hits,
		ClusterMisses:  cs.Misses,
		ClusterHitRate: cs.HitRate(),
		DefSHA256:      sha,
	}
}

// moveSinkFraction nudges the first n clock sinks of d by a sub-site step
// (50x25 nm) — the 1%-of-sinks ECO perturbation of an incremental
// legalization pass — and returns how many it moved. The nudge is kept
// below the placement-site pitch deliberately: the partitioner's balanced
// assignment is a global optimization, so moves large enough to shift
// k-means centroids legitimately re-partition the level and dirty most
// clusters (the cache correctly degrades to a cold run). Sub-site moves
// keep membership stable, which is the regime where incremental replay
// has something to save.
func moveSinkFraction(d *design.Design, n int) int {
	moved := 0
	for i := range d.Insts {
		if moved >= n {
			break
		}
		if d.Insts[i].IsSink {
			d.Insts[i].Loc.X += 0.05
			d.Insts[i].Loc.Y += 0.025
			moved++
		}
	}
	return moved
}

// RunCacheBench measures the content-addressed stage cache on a Table-4-class
// design in two tiers and returns the BENCH_5.json report:
//
//   - cold/warm: the paper flow (SA refinement on) runs twice against one
//     store; the warm run replays every stage, so its speedup is the
//     cache's full-replay win.
//   - eco: with SA off (annealing cascades make membership chaotic under
//     perturbation — a partitioner property, not a cache one), the flow
//     primes the store, 1% of sinks move, and the re-run rebuilds only the
//     dirtied clusters. eco_ref is the uncached run of the moved design the
//     eco row must match byte-for-byte; its cost is the eco speedup base.
//
// An error means byte-identity was violated — a result to investigate, not
// report.
func RunCacheBench(seed int64, workers int) (CacheBenchReport, error) {
	rep := CacheBenchReport{Schema: "sllt-cache-bench/v1", Seed: seed}

	// Tier 1: cold vs warm full replay under the paper flow.
	spec := designgen.Spec{Name: "cachegen", Insts: 2400, FFs: 480, Util: 0.6}
	opts := cts.DefaultOptions()
	opts.Workers = workers
	store, err := cache.New(cache.Config{})
	if err != nil {
		return rep, err
	}
	coldNs, coldSHA, coldDelta, err := cacheBenchRun(designgen.Generate(spec, seed), opts, store)
	if err != nil {
		return rep, err
	}
	rep.Results = append(rep.Results, cacheBenchRow(spec.Name, "cold", coldNs, coldSHA, coldDelta))
	warmNs, warmSHA, warmDelta, err := cacheBenchRun(designgen.Generate(spec, seed), opts, store)
	if err != nil {
		return rep, err
	}
	if warmSHA != coldSHA {
		return rep, fmt.Errorf("warm DEF digest %s differs from cold %s", warmSHA, coldSHA)
	}
	warm := cacheBenchRow(spec.Name, "warm", warmNs, warmSHA, warmDelta)
	warm.Speedup = speedup(coldNs, warmNs)
	rep.Results = append(rep.Results, warm)

	// Tier 2: incremental re-run after moving 1% of the sinks.
	ecoSpec := designgen.Spec{Name: "ecogen", Insts: 2400, FFs: 480, Util: 0.6}
	ecoOpts := cts.DefaultOptions()
	ecoOpts.Workers = workers
	ecoOpts.UseSA = false
	ecoStore, err := cache.New(cache.Config{})
	if err != nil {
		return rep, err
	}
	baseNs, baseSHA, baseDelta, err := cacheBenchRun(designgen.Generate(ecoSpec, seed), ecoOpts, ecoStore)
	if err != nil {
		return rep, err
	}
	rep.Results = append(rep.Results, cacheBenchRow(ecoSpec.Name, "eco_cold", baseNs, baseSHA, baseDelta))

	nMove := ecoSpec.FFs / 100
	if nMove < 1 {
		nMove = 1
	}
	moved := func() *design.Design {
		d := designgen.Generate(ecoSpec, seed)
		moveSinkFraction(d, nMove)
		return d
	}
	rep.EcoMovedSinks = nMove

	refNs, refSHA, _, err := cacheBenchRun(moved(), ecoOpts, nil)
	if err != nil {
		return rep, err
	}
	ecoNs, ecoSHA, ecoDelta, err := cacheBenchRun(moved(), ecoOpts, ecoStore)
	if err != nil {
		return rep, err
	}
	if ecoSHA != refSHA {
		return rep, fmt.Errorf("eco DEF digest %s differs from uncached reference %s", ecoSHA, refSHA)
	}
	eco := cacheBenchRow(ecoSpec.Name, "eco", ecoNs, ecoSHA, ecoDelta)
	eco.Speedup = speedup(refNs, ecoNs)
	rep.Results = append(rep.Results, eco)
	rep.Results = append(rep.Results, cacheBenchRow(ecoSpec.Name, "eco_ref", refNs, refSHA, cache.Stats{}))
	return rep, nil
}

// FormatCacheBenchReport renders the report as an aligned text table for the
// benchtab console summary.
func FormatCacheBenchReport(r CacheBenchReport) string {
	out := fmt.Sprintf("Stage-cache benchmarks (seed %d, eco moves %d sinks)\n", r.Seed, r.EcoMovedSinks)
	out += fmt.Sprintf("%-10s %-9s %14s %9s %9s %9s %8s\n",
		"design", "mode", "ns_per_run", "clu.hit", "clu.miss", "hit_rate", "speedup")
	for _, res := range r.Results {
		sp := "-"
		if res.Speedup > 0 {
			sp = fmt.Sprintf("%.2fx", res.Speedup)
		}
		out += fmt.Sprintf("%-10s %-9s %14d %9d %9d %9.2f %8s\n",
			res.Design, res.Mode, res.NsPerRun, res.ClusterHits, res.ClusterMisses, res.ClusterHitRate, sp)
	}
	return out
}
