package bench

import (
	"fmt"
	"strings"

	"sllt/internal/core"
	"sllt/internal/dme"
	"sllt/internal/geom"
	"sllt/internal/htree"
	"sllt/internal/parallel"
	"sllt/internal/rsmt"
	"sllt/internal/salt"
	"sllt/internal/tree"
)

// AlgoRow is one Table 1 line: a routing topology and its SLLT metrics.
type AlgoRow struct {
	Name        string
	Metrics     tree.Metrics
	SkewControl bool
	Tree        *tree.Tree
}

// Table1Net returns the demonstration net used for Table 1 and the Fig. 1
// gallery: eight load pins around a central driver inside a 10×10 box. The
// paper's exact pin placement is not published; this net mirrors its
// Manhattan-distance profile (min MD 5, max MD 8 — compare the paper's
// FLUTE row with MinPL 5 and MaxPL 9), which is what makes the α/β/γ
// orderings in the table land the same way.
func Table1Net() *tree.Net {
	return &tree.Net{
		Name:   "demo8",
		Source: geom.Pt(5, 5),
		Sinks: []tree.PinSink{
			{Name: "s1", Loc: geom.Pt(1, 2), Cap: 1.2}, // MD 7
			{Name: "s2", Loc: geom.Pt(2, 8), Cap: 1.2}, // MD 6
			{Name: "s3", Loc: geom.Pt(8, 1), Cap: 1.2}, // MD 7
			{Name: "s4", Loc: geom.Pt(9, 4), Cap: 1.2}, // MD 5
			{Name: "s5", Loc: geom.Pt(9, 9), Cap: 1.2}, // MD 8
			{Name: "s6", Loc: geom.Pt(5, 0), Cap: 1.2}, // MD 5
			{Name: "s7", Loc: geom.Pt(0, 5), Cap: 1.2}, // MD 5
			{Name: "s8", Loc: geom.Pt(3, 9), Cap: 1.2}, // MD 6
		},
	}
}

// RunTable1 builds the net with each of the seven algorithms of Table 1 and
// measures shallowness, lightness and skewness. The skew bound for the
// bounded algorithms is 10 % of the net's half-perimeter, mirroring the
// moderate regime of the paper's example. The seven builders share nothing
// but the immutable input net, so they fan out over workers with each
// task writing only its own row; row order is fixed by the table, not by
// completion order.
func RunTable1(net *tree.Net, workers int) ([]AlgoRow, error) {
	refWL := rsmt.WL(net)
	bound := net.BBox().HalfPerimeter() * 0.10

	builders := []struct {
		name    string
		skewCtl bool
		build   func() (*tree.Tree, error)
	}{
		{"H-tree", true, func() (*tree.Tree, error) { return htree.Build(net), nil }},
		{"GH-tree", true, func() (*tree.Tree, error) {
			return htree.BuildGH(net, htree.DefaultFactors(len(net.Sinks))), nil
		}},
		{"ZST", true, func() (*tree.Tree, error) {
			topo := dme.GenTopo(net, dme.GreedyDist, 0)
			return dme.Build(net, topo, dme.ZST())
		}},
		{"BST", true, func() (*tree.Tree, error) {
			btopo := dme.GenTopo(net, dme.GreedyDist, bound)
			return dme.Build(net, btopo, dme.BST(bound))
		}},
		{"FLUTE*", false, func() (*tree.Tree, error) { return rsmt.Build(net), nil }},
		{"R-SALT", false, func() (*tree.Tree, error) { return salt.Build(net, 0), nil }},
		{"CBS", true, func() (*tree.Tree, error) { return core.Build(net, core.DefaultOptions(bound)) }},
	}

	rows := make([]AlgoRow, len(builders))
	err := parallel.ForEach(workers, len(builders), func(i int) error {
		b := builders[i]
		t, err := b.build()
		if err != nil {
			return fmt.Errorf("table1 %s: %w", b.name, err)
		}
		rows[i] = AlgoRow{
			Name:        b.name,
			Metrics:     tree.Measure(t, net, refWL),
			SkewControl: b.skewCtl,
			Tree:        t,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatTable1 renders rows in the paper's Table 1 layout.
func FormatTable1(rows []AlgoRow) string {
	var b strings.Builder
	b.WriteString("Table 1: Different routing topologies on net (α shallowness, β lightness, γ skewness)\n")
	fmt.Fprintf(&b, "%-9s %7s %7s %8s %8s %6s %6s %6s %6s  %s\n",
		"Algo", "MaxPL", "MinPL", "TotalWL", "MeanPL", "α", "β", "γ", "Mean", "SkewCtl")
	for _, r := range rows {
		ctl := "x"
		if r.SkewControl {
			ctl = "v"
		}
		m := r.Metrics
		fmt.Fprintf(&b, "%-9s %7.2f %7.2f %8.2f %8.2f %6.2f %6.2f %6.2f %6.2f  %s\n",
			r.Name, m.MaxPL, m.MinPL, m.WL, m.MeanPL, m.Alpha, m.Beta, m.Gamma, m.Mean(), ctl)
	}
	b.WriteString("* FLUTE substituted by the internal RSMT heuristic (see DESIGN.md)\n")
	return b.String()
}
