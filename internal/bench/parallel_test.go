package bench

import (
	"reflect"
	"runtime"
	"testing"

	"sllt/internal/designgen"
	"sllt/internal/dme"
)

// TestTable1WorkersInvariant: the fanned-out seven-builder run must return
// the same rows, in the same order, with bit-identical metrics as the
// serial run.
func TestTable1WorkersInvariant(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	runtime.GOMAXPROCS(8)
	net := Table1Net()
	ref, err := RunTable1(net, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 7, 8} {
		rows, err := RunTable1(net, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != len(ref) {
			t.Fatalf("workers=%d: %d rows, want %d", workers, len(rows), len(ref))
		}
		for i := range ref {
			if rows[i].Name != ref[i].Name || rows[i].Metrics != ref[i].Metrics {
				t.Errorf("workers=%d row %d: %s %+v != serial %s %+v",
					workers, i, rows[i].Name, rows[i].Metrics, ref[i].Name, ref[i].Metrics)
			}
		}
	}
}

// TestTable23WorkersInvariant: each (method, bound) cell derives its net
// stream from cfg.Seed alone, so the parallel tables must be bit-identical
// to the serial ones — formatting included.
func TestTable23WorkersInvariant(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	runtime.GOMAXPROCS(8)
	cfg := DefaultT23Config()
	cfg.Nets = 15
	cfg.Methods = []dme.TopoMethod{dme.GreedyDist, dme.GreedyMerge}
	cfg.Bounds = []float64{80, 10}

	ref2, err := RunTable2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref3, err := RunTable3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		pcfg := cfg
		pcfg.Workers = workers
		got2, err := RunTable2(pcfg)
		if err != nil {
			t.Fatal(err)
		}
		if FormatTable2(got2, pcfg) != FormatTable2(ref2, cfg) {
			t.Errorf("workers=%d: Table 2 differs from serial", workers)
		}
		got3, err := RunTable3(pcfg)
		if err != nil {
			t.Fatal(err)
		}
		if FormatTable3(got3, pcfg) != FormatTable3(ref3, cfg) {
			t.Errorf("workers=%d: Table 3 differs from serial", workers)
		}
	}
}

// TestRunFlowsWorkersInvariant: threading Workers into the flows must not
// change any synthesis result (Runtime is wall clock and excluded).
func TestRunFlowsWorkersInvariant(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	runtime.GOMAXPROCS(8)
	spec := ScaleSpec(Table6Specs()[0], 0.15)
	ref := RunFlows([]designgen.Spec{spec}, 1, 1)
	par := RunFlows([]designgen.Spec{spec}, 1, 8)
	if len(ref) != len(par) {
		t.Fatalf("result counts differ: %d vs %d", len(ref), len(par))
	}
	for i := range ref {
		a, b := ref[i], par[i]
		a.Runtime, b.Runtime = 0, 0
		a.Stages, b.Stages = nil, nil // wall clock, like Runtime
		if !reflect.DeepEqual(a, b) {
			t.Errorf("flow %s/%s differs with workers: %+v vs %+v", ref[i].Design, ref[i].Flow, a, b)
		}
	}
}
