package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"sllt/internal/cts"
	"sllt/internal/design"
	"sllt/internal/designgen"
	"sllt/internal/lefdef"
)

// IOResult is one (operation, sink-tier) row of the I/O trajectory. Bytes is
// the DEF text moved; TotalAlloc and RetainedHeap are runtime.MemStats
// deltas around the operation — TotalAlloc counts everything the operation
// ever allocated, RetainedHeap what is still live (after GC) while the
// result is held. For the streaming parser the gap between the two is the
// scanner's whole working set: one fixed buffer, regardless of file size.
type IOResult struct {
	Op           string  `json:"op"`
	N            int     `json:"n"`     // clock sinks in the tier
	Bytes        int64   `json:"bytes"` // DEF bytes read or written
	Ns           int64   `json:"ns"`
	MBPerS       float64 `json:"mb_per_s"`
	TotalAlloc   int64   `json:"total_alloc_bytes"`
	RetainedHeap int64   `json:"retained_heap_bytes"`
}

// IOFlow is the end-to-end tier: generate → stream to disk → stream-parse
// back → build the design DB → synthesize → stream-export, with the live
// heap sampled (post-GC) at every phase boundary. This is the record of the
// first million-sink flow the repo can hold in one process.
type IOFlow struct {
	N            int     `json:"n"`
	Workers      int     `json:"workers"`
	GenNs        int64   `json:"gen_ns"`
	ParseNs      int64   `json:"parse_ns"`
	FlowNs       int64   `json:"flow_ns"`
	ExportNs     int64   `json:"export_ns"`
	DefBytes     int64   `json:"def_bytes"`
	ExportBytes  int64   `json:"export_bytes"`
	Levels       int     `json:"levels"`
	Buffers      int     `json:"buffers"`
	SkewPs       float64 `json:"skew_ps"`
	MaxLatPs     float64 `json:"max_latency_ps"`
	WLUm         float64 `json:"wl_um"`
	PeakLiveHeap int64   `json:"peak_live_heap_bytes"`
}

// IOReport is the top-level BENCH_7.json document.
type IOReport struct {
	Schema  string     `json:"schema"`
	Seed    int64      `json:"seed"`
	Tiers   []int      `json:"tiers"`
	RefMaxN int        `json:"ref_max_n"`
	Results []IOResult `json:"results"`
	Flow    *IOFlow    `json:"flow,omitempty"`
}

// ioSpec is the benchmark design shape at a sink tier: half the instances
// are flip-flops, half logic filler, matching the DEF-size-per-sink ratio
// the flow tables use closely enough while keeping the million-sink tier's
// design DB within a workstation's memory.
func ioSpec(n int) designgen.Spec {
	return designgen.Spec{Name: fmt.Sprintf("io_%d", n), Insts: 2 * n, FFs: n, Util: 0.62}
}

// ioMeasure runs op once between two GC'd MemStats readings. The returned
// retained delta is the live-heap growth attributable to whatever op left
// behind (its returned result must be kept alive by the caller's closure
// until ioMeasure returns).
func ioMeasure(op func() error) (ns, totalAlloc, retained int64, err error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	err = op()
	elapsed := time.Since(start)
	runtime.GC()
	runtime.ReadMemStats(&after)
	return elapsed.Nanoseconds(),
		int64(after.TotalAlloc - before.TotalAlloc),
		int64(after.HeapAlloc) - int64(before.HeapAlloc),
		err
}

func mbPerS(bytes, ns int64) float64 {
	if ns <= 0 {
		return 0
	}
	return float64(bytes) / 1e6 / (float64(ns) / 1e9)
}

// countWriter counts bytes and discards them: export throughput without
// disk noise.
type countWriter struct{ n int64 }

func (w *countWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// RunIOBench measures DEF I/O at each sink tier: streaming generate-to-disk
// throughput, then parse (streaming vs the retained legacy
// read-whole-file-and-tokenize path) and export (streaming vs the legacy
// build-the-whole-string renderer). The legacy sides are O(n) in tokens and
// rendered text, so they only run on tiers ≤ refMaxN — above that the
// streaming column stands alone, which is the point. flowN > 0 appends the
// end-to-end flow tier. All inputs derive from seed.
func RunIOBench(tiers []int, seed int64, refMaxN, flowN, workers int) (IOReport, error) {
	rep := IOReport{
		Schema:  "sllt-io-bench/v1",
		Seed:    seed,
		Tiers:   append([]int(nil), tiers...),
		RefMaxN: refMaxN,
	}
	dir, err := os.MkdirTemp("", "sllt-iobench")
	if err != nil {
		return rep, err
	}
	defer os.RemoveAll(dir)

	var g designgen.Generator
	for _, n := range tiers {
		path := filepath.Join(dir, fmt.Sprintf("io_%d.def", n))
		d := g.Generate(ioSpec(n), seed)

		// Streaming generate-to-disk: the only way tiers past refMaxN ever
		// reach a file.
		var fileBytes int64
		ns, total, _, err := ioMeasure(func() error {
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := designgen.StreamDEF(f, d); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		})
		if err != nil {
			return rep, err
		}
		st, err := os.Stat(path)
		if err != nil {
			return rep, err
		}
		fileBytes = st.Size()
		rep.Results = append(rep.Results, IOResult{
			Op: "def_write_stream", N: n, Bytes: fileBytes, Ns: ns,
			MBPerS: mbPerS(fileBytes, ns), TotalAlloc: total,
		})

		// Legacy in-memory render, for the writer speedup column.
		if n <= refMaxN {
			def := designgen.DEF(d)
			var rendered int64
			ns, total, _, err := ioMeasure(func() error {
				s := def.WriteDEFLegacy()
				rendered = int64(len(s))
				return nil
			})
			if err != nil {
				return rep, err
			}
			rep.Results = append(rep.Results, IOResult{
				Op: "def_write_legacy", N: n, Bytes: rendered, Ns: ns,
				MBPerS: mbPerS(rendered, ns), TotalAlloc: total,
			})
		}

		// Streaming export of the same structure to a counting sink: writer
		// throughput with the disk factored out.
		{
			def := designgen.DEF(d)
			var cw countWriter
			ns, total, _, err := ioMeasure(func() error {
				_, err := def.WriteTo(&cw)
				return err
			})
			if err != nil {
				return rep, err
			}
			rep.Results = append(rep.Results, IOResult{
				Op: "def_export_stream", N: n, Bytes: cw.n, Ns: ns,
				MBPerS: mbPerS(cw.n, ns), TotalAlloc: total,
			})
		}

		// Legacy parse: read the whole file into a string, tokenize it all,
		// then walk the token slice. Retained includes the result struct AND
		// the full source text its name substrings pin.
		if n <= refMaxN {
			var keep *lefdef.DEF
			ns, total, retained, err := ioMeasure(func() error {
				src, err := os.ReadFile(path)
				if err != nil {
					return err
				}
				keep, err = lefdef.ParseDEFLegacy(string(src))
				return err
			})
			if err != nil {
				return rep, err
			}
			rep.Results = append(rep.Results, IOResult{
				Op: "def_parse_legacy", N: n, Bytes: fileBytes, Ns: ns,
				MBPerS: mbPerS(fileBytes, ns), TotalAlloc: total, RetainedHeap: retained,
			})
			runtime.KeepAlive(keep)
		}

		// Streaming parse: one fixed scanner buffer between the file and the
		// result; retained is the result structure alone.
		{
			var keep *lefdef.DEF
			ns, total, retained, err := ioMeasure(func() error {
				f, err := os.Open(path)
				if err != nil {
					return err
				}
				defer f.Close()
				keep, err = lefdef.ParseDEFReader(f)
				return err
			})
			if err != nil {
				return rep, err
			}
			rep.Results = append(rep.Results, IOResult{
				Op: "def_parse_stream", N: n, Bytes: fileBytes, Ns: ns,
				MBPerS: mbPerS(fileBytes, ns), TotalAlloc: total, RetainedHeap: retained,
			})
			runtime.KeepAlive(keep)
		}
	}

	if flowN > 0 {
		flow, err := runIOFlow(flowN, seed, workers, dir)
		if err != nil {
			return rep, err
		}
		rep.Flow = flow
	}
	return rep, nil
}

// runIOFlow drives the full pipeline at n sinks the way cmd/slltcts does —
// DEF on disk in, post-CTS DEF on disk out — sampling the post-GC live heap
// at each phase boundary. SA refinement and k-means restarts are disabled:
// the tier measures the I/O and construction path at scale, and those
// refinement knobs multiply partition time without touching a byte of I/O.
func runIOFlow(n int, seed int64, workers int, dir string) (*IOFlow, error) {
	flow := &IOFlow{N: n, Workers: workers}
	peak := func() {
		runtime.GC()
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		if h := int64(m.HeapAlloc); h > flow.PeakLiveHeap {
			flow.PeakLiveHeap = h
		}
	}

	inPath := filepath.Join(dir, "ioflow_in.def")
	outPath := filepath.Join(dir, "ioflow_out.def")
	var g designgen.Generator

	start := time.Now()
	d := g.Generate(ioSpec(n), seed)
	f, err := os.Create(inPath)
	if err != nil {
		return nil, err
	}
	if err := designgen.StreamDEF(f, d); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	flow.GenNs = time.Since(start).Nanoseconds()
	st, err := os.Stat(inPath)
	if err != nil {
		return nil, err
	}
	flow.DefBytes = st.Size()
	d = nil
	g = designgen.Generator{}
	peak()

	start = time.Now()
	in, err := os.Open(inPath)
	if err != nil {
		return nil, err
	}
	def, err := lefdef.ParseDEFReader(in)
	in.Close()
	if err != nil {
		return nil, err
	}
	db, err := design.FromLEFDEF(designgen.LEF(nil), def, "clk")
	if err != nil {
		return nil, err
	}
	def = nil
	flow.ParseNs = time.Since(start).Nanoseconds()
	peak()

	opts := cts.DefaultOptions()
	opts.Workers = workers
	opts.UseSA = false
	opts.SAIters = 0
	opts.KMeansRestarts = 1
	start = time.Now()
	res, err := cts.Run(db, opts)
	if err != nil {
		return nil, err
	}
	flow.FlowNs = time.Since(start).Nanoseconds()
	flow.Levels = res.Levels
	flow.Buffers = res.Report.Buffers
	flow.SkewPs = res.Report.Skew
	flow.MaxLatPs = res.Report.MaxLatency
	flow.WLUm = res.Report.WL
	peak()

	start = time.Now()
	out, err := os.Create(outPath)
	if err != nil {
		return nil, err
	}
	if _, err := cts.ExportDEFWriter(out, db, res); err != nil {
		out.Close()
		return nil, err
	}
	if err := out.Close(); err != nil {
		return nil, err
	}
	flow.ExportNs = time.Since(start).Nanoseconds()
	ost, err := os.Stat(outPath)
	if err != nil {
		return nil, err
	}
	flow.ExportBytes = ost.Size()
	peak()
	return flow, nil
}

// FormatIOReport renders the report as an aligned text table for the
// benchtab console summary.
func FormatIOReport(r IOReport) string {
	out := fmt.Sprintf("DEF I/O benchmarks (seed %d)\n", r.Seed)
	out += fmt.Sprintf("%-18s %9s %13s %12s %9s %14s %14s\n",
		"op", "n", "bytes", "ns", "MB/s", "total_alloc", "retained")
	for _, res := range r.Results {
		out += fmt.Sprintf("%-18s %9d %13d %12d %9.1f %14d %14d\n",
			res.Op, res.N, res.Bytes, res.Ns, res.MBPerS, res.TotalAlloc, res.RetainedHeap)
	}
	if f := r.Flow; f != nil {
		out += fmt.Sprintf("flow n=%d workers=%d def_bytes=%d export_bytes=%d gen=%dms parse=%dms cts=%dms export=%dms levels=%d buffers=%d skew=%.2fps wl=%.0fum peak_live_heap=%dMB\n",
			f.N, f.Workers, f.DefBytes, f.ExportBytes,
			f.GenNs/1e6, f.ParseNs/1e6, f.FlowNs/1e6, f.ExportNs/1e6,
			f.Levels, f.Buffers, f.SkewPs, f.WLUm, f.PeakLiveHeap>>20)
	}
	return out
}
