// Package bench contains the workload generators and harnesses that
// regenerate every table and figure of the paper's evaluation:
//
//	Table 1  — routing-topology metrics (α, β, γ) on a demonstration net
//	Table 2  — R-SALT vs CBS wirelength across skew bounds and topologies
//	Table 3  — BST-DME vs CBS wirelength / capacitance / wire delay
//	Tables 6 and 7 — full hierarchical flow vs the commercial-like and
//	                 OpenROAD-like baselines on Table 4's designs
//	Fig. 1   — the topology gallery (via internal/viz)
//
// Harnesses return structured rows (for tests and testing.B benchmarks) and
// format them as the paper's tables (for cmd/benchtab and the examples).
package bench

import (
	"math/rand"

	"sllt/internal/geom"
	"sllt/internal/tree"
)

// NetConfig describes the random clock-net workload of Tables 2 and 3: nets
// inside a box (the paper uses 75 µm), pin counts uniform in [MinPins,
// MaxPins] (the paper uses 10–40), driver at the box center.
type NetConfig struct {
	Box     float64
	MinPins int
	MaxPins int
	SinkCap float64 // fF per load pin
}

// DefaultNetConfig returns the paper's Table 2/3 workload parameters.
func DefaultNetConfig() NetConfig {
	return NetConfig{Box: 75, MinPins: 10, MaxPins: 40, SinkCap: 1.2}
}

// Random generates one clock net. Pin locations are snapped to a 0.1 µm
// grid and deduplicated.
func (c NetConfig) Random(rng *rand.Rand) *tree.Net {
	n := c.MinPins + rng.Intn(c.MaxPins-c.MinPins+1)
	net := &tree.Net{Name: "rnd", Source: geom.Pt(c.Box/2, c.Box/2)}
	used := map[geom.Point]bool{net.Source: true}
	for len(net.Sinks) < n {
		p := geom.Pt(snap(rng.Float64()*c.Box), snap(rng.Float64()*c.Box))
		if used[p] {
			continue
		}
		used[p] = true
		net.Sinks = append(net.Sinks, tree.PinSink{Name: "p", Loc: p, Cap: c.SinkCap})
	}
	return net
}

func snap(x float64) float64 {
	return float64(int(x*10+0.5)) / 10
}
