// Package sllt reproduces "Toward Controllable Hierarchical Clock Tree
// Synthesis with Skew-Latency-Load Tree" (DAC 2024): the SLLT metrics, the
// CBS (Concurrent BST and SALT) routing-topology construction, and the full
// hierarchical clock tree synthesis framework with partitioning and buffer
// optimization, together with every substrate they need (geometry, DME,
// SALT, RSMT, LEF/DEF/Liberty parsing, STA-lite) built from scratch on the
// Go standard library.
//
// The root package holds the benchmark harness (bench_test.go) that
// regenerates the paper's tables and figures; the implementation lives
// under internal/ (see DESIGN.md for the system inventory) and the runnable
// entry points under cmd/ and examples/.
package sllt
