// Random nets: a reduced-scale run of the paper's Table 2 and Table 3
// experiments — 10–40-pin clock nets in a 75 µm box, comparing CBS against
// R-SALT (wirelength under skew control) and against BST-DME (wirelength,
// load capacitance, wire delay).
//
// Run: go run ./examples/randomnets          (200 nets per cell)
package main

import (
	"flag"
	"fmt"
	"log"

	"sllt/internal/bench"
)

func main() {
	nets := flag.Int("nets", 200, "nets per table cell (the paper uses 10000)")
	flag.Parse()

	cfg := bench.DefaultT23Config()
	cfg.Nets = *nets

	t2, err := bench.RunTable2(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(bench.FormatTable2(t2, cfg))

	t3, err := bench.RunTable3(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(bench.FormatTable3(t3, cfg))
}
