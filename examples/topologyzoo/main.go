// Topology zoo: build the same clock net with all seven routing-topology
// algorithms of the paper's Table 1 / Fig. 1 — H-tree, GH-tree, ZST-DME,
// BST-DME, the RSMT (FLUTE substitute), R-SALT and CBS — print the metric
// comparison and write an SVG rendering of each tree.
//
// Run: go run ./examples/topologyzoo
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"sllt/internal/bench"
	"sllt/internal/viz"
)

func main() {
	net := bench.Table1Net()
	rows, err := bench.RunTable1(net, runtime.GOMAXPROCS(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.FormatTable1(rows))

	dir := "topologyzoo_out"
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		m := r.Metrics
		title := fmt.Sprintf("%s  α=%.2f β=%.2f γ=%.2f", r.Name, m.Alpha, m.Beta, m.Gamma)
		name := strings.ToLower(strings.TrimSuffix(r.Name, "*"))
		path := filepath.Join(dir, name+".svg")
		if err := os.WriteFile(path, []byte(viz.SVG(r.Tree, viz.DefaultStyle(title))), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nSVG gallery written to %s/ (the paper's Fig. 1)\n", dir)
}
