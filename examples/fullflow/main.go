// Full flow: synthesize a clock tree for a generated benchmark design with
// all three competing flows (ours / commercial-like / OpenROAD-like) and
// print a Table-6-style comparison row, demonstrating the complete
// hierarchical CTS pipeline: LEF/DEF round trip, partitioning, CBS routing
// topology, buffering and STA.
//
// Run: go run ./examples/fullflow            (s38584 statistics)
//
//	go run ./examples/fullflow -design ethernet -scale 0.3
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"

	"sllt/internal/bench"
	"sllt/internal/design"
	"sllt/internal/designgen"
	"sllt/internal/lefdef"
	"sllt/internal/liberty"
)

func main() {
	name := flag.String("design", "s38584", "Table 4 design name")
	scale := flag.Float64("scale", 1.0, "shrink factor for quick runs")
	seed := flag.Int64("seed", 1, "placement seed")
	flag.Parse()

	spec, err := designgen.FindSpec(*name)
	if err != nil {
		log.Fatal(err)
	}
	spec = bench.ScaleSpec(spec, *scale)

	// Exercise the real input path: generate, serialize to LEF/DEF, parse
	// back, and rebuild the design database from the files.
	gen := designgen.Generate(spec, *seed)
	lefSrc := designgen.LEF(designgen.BufferMacros(liberty.Default())).WriteLEF()
	defSrc := designgen.DEF(gen).WriteDEF()
	lef, err := lefdef.ParseLEF(lefSrc)
	if err != nil {
		log.Fatal(err)
	}
	df, err := lefdef.ParseDEF(defSrc)
	if err != nil {
		log.Fatal(err)
	}
	d, err := design.FromLEFDEF(lef, df, "clk")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design %s: %d instances, %d clock sinks, die %.0fx%.0f um\n\n",
		d.Name, len(d.Insts), d.NumFFs(), d.Die.W(), d.Die.H())

	results := bench.RunFlows([]designgen.Spec{spec}, *seed, runtime.GOMAXPROCS(0))
	fmt.Print(bench.FormatFlowTable("Flow comparison (Table 6 format)", results))
}
