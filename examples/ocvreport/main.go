// OCV report: synthesize a clock tree and analyze it under on-chip
// variation — the effect the paper's introduction names as the reason
// skew-only CTS no longer suffices. Shows nominal skew, the naive
// early/late bound, and the CPPR-corrected variation skew for each flow.
//
// Run: go run ./examples/ocvreport
package main

import (
	"flag"
	"fmt"
	"log"

	"sllt/internal/baseline"
	"sllt/internal/bench"
	"sllt/internal/cts"
	"sllt/internal/designgen"
	"sllt/internal/timing"
)

func main() {
	name := flag.String("design", "s38584", "Table 4 design name")
	scale := flag.Float64("scale", 0.5, "shrink factor")
	flag.Parse()

	spec, err := designgen.FindSpec(*name)
	if err != nil {
		log.Fatal(err)
	}
	spec = bench.ScaleSpec(spec, *scale)
	d := designgen.Generate(spec, 1)
	ocv := timing.DefaultOCV()
	fmt.Printf("design %s: %d sinks; derates wire %.0f%%/cell %.0f%%\n\n",
		spec.Name, d.NumFFs(), (ocv.WireLate-1)*100, (ocv.CellLate-1)*100)
	fmt.Printf("%-6s %12s %12s %12s %12s\n", "flow", "nominal(ps)", "naive(ps)", "cppr(ps)", "pessimism")

	for _, fl := range []struct {
		name string
		opts cts.Options
	}{
		{"ours", cts.DefaultOptions()},
		{"com", baseline.CommercialLike()},
		{"or", baseline.OpenROADLike()},
	} {
		res, err := cts.Run(d, fl.opts)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := timing.AnalyzeOCV(res.Tree, fl.opts.Lib, fl.opts.Tech, fl.opts.SourceSlew, ocv)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %12.2f %12.2f %12.2f %12.2f\n",
			fl.name, res.Report.Skew, rep.NaiveSkew, rep.Skew, rep.Pessimism)
	}
}
