// Quickstart: build one skew-latency-load tree with CBS and inspect its
// SLLT metrics (shallowness α, lightness β, skewness γ).
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sllt/internal/core"
	"sllt/internal/dme"
	"sllt/internal/geom"
	"sllt/internal/rsmt"
	"sllt/internal/tech"
	"sllt/internal/timing"
	"sllt/internal/tree"
)

func main() {
	// A clock net: one driver, a handful of flip-flop clock pins.
	net := &tree.Net{
		Name:   "clk_core",
		Source: geom.Pt(40, 40),
		Sinks: []tree.PinSink{
			{Name: "ff_a/CK", Loc: geom.Pt(10, 12), Cap: 1.2},
			{Name: "ff_b/CK", Loc: geom.Pt(25, 70), Cap: 1.2},
			{Name: "ff_c/CK", Loc: geom.Pt(48, 25), Cap: 1.2},
			{Name: "ff_d/CK", Loc: geom.Pt(60, 64), Cap: 1.2},
			{Name: "ff_e/CK", Loc: geom.Pt(75, 40), Cap: 1.2},
			{Name: "ff_f/CK", Loc: geom.Pt(12, 48), Cap: 1.2},
			{Name: "ff_g/CK", Loc: geom.Pt(66, 9), Cap: 1.2},
		},
	}

	// CBS under the Elmore delay model with a 10 ps skew bound.
	tc := tech.Default28nm()
	opts := core.Options{
		DME:        dme.Options{Model: dme.Elmore, SkewBound: 10, Tech: tc},
		TopoMethod: dme.GreedyDist,
		SALTEps:    0.1,
	}
	t, err := core.Build(net, opts)
	if err != nil {
		log.Fatal(err)
	}

	// SLLT metrics: β is measured against the RSMT wirelength.
	m := tree.Measure(t, net, rsmt.WL(net))
	fmt.Printf("net %q: %d sinks\n", net.Name, len(net.Sinks))
	fmt.Printf("wirelength    : %.1f um\n", m.WL)
	fmt.Printf("shallowness α : %.3f  (max path / Manhattan distance)\n", m.Alpha)
	fmt.Printf("lightness   β : %.3f  (wire / RSMT wire)\n", m.Beta)
	fmt.Printf("skewness    γ : %.3f  (max path / mean path)\n", m.Gamma)

	maxD, skew := timing.Unbuffered(t, tc)
	fmt.Printf("wire delay    : %.2f ps (max), skew %.2f ps (bound 10)\n", maxD, skew)
}
