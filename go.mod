module sllt

go 1.22
